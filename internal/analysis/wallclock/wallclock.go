// Package wallclock forbids wall-clock time sources and the global math/rand
// functions inside the simulation packages. Virtual time must flow through
// vclock.Timeline (paper §4's cooperative timelines): an operator that reads
// time.Now observes the speed of the machine running the simulation, not the
// modelled hardware, and the global math/rand source is both nondeterministic
// across runs (unseeded) and a contended lock under concurrent serving.
// Randomness must come from an injected, seeded *rand.Rand; wall time from an
// injected clock (internal/clock) owned by a non-simulation layer.
//
// internal/hw is the one allow-listed package: the hardware profiler
// legitimately measures wall time to calibrate virtual rates, and marks each
// use with //lint:allow wallclock.
package wallclock

import (
	"go/ast"
	"go/types"

	"hybridndp/internal/analysis"
)

// SimPackages are the packages whose code must be wall-clock free. Matching
// is by final import-path segment (see analysis.Run).
var SimPackages = []string{"vclock", "coop", "exec", "ftl", "lsm", "flash", "sched", "device", "hw", "obs", "fault", "fleet", "serve"}

// bannedTime are the time package functions that observe or consume wall time.
var bannedTime = map[string]string{
	"Now":       "read virtual time from a vclock.Timeline or an injected clock.Clock",
	"Sleep":     "charge a virtual duration to a vclock.Timeline instead of sleeping",
	"Since":     "subtract vclock.Time instants or use an injected clock.Clock",
	"Until":     "subtract vclock.Time instants or use an injected clock.Clock",
	"After":     "model delays on a vclock.Timeline",
	"Tick":      "model periodic work on a vclock.Timeline",
	"NewTimer":  "model delays on a vclock.Timeline",
	"NewTicker": "model periodic work on a vclock.Timeline",
}

// bannedRand are the math/rand top-level functions backed by the global
// locked source.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name:      "wallclock",
	Doc:       "forbid wall-clock time and global math/rand in simulation packages",
	Packages:  SimPackages,
	AllowIn:   []string{"internal/hw"},
	SkipTests: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if hint, bad := bannedTime[sel.Sel.Name]; bad {
					pass.Reportf(call.Pos(), "wall-clock call time.%s in simulation package %s: %s",
						sel.Sel.Name, pass.Path, hint)
				}
			case "math/rand", "math/rand/v2":
				if bannedRand[sel.Sel.Name] {
					pass.Reportf(call.Pos(), "global math/rand call rand.%s in simulation package %s: use an injected seeded *rand.Rand",
						sel.Sel.Name, pass.Path)
				}
			}
			return true
		})
	}
	return nil
}
