package lockcheck_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "../testdata", lockcheck.Analyzer, "lockcheck")
}
