// Package lockcheck enforces the repository's mutex annotation discipline:
// a struct field whose declaration carries a "guarded by <mu>" comment may
// only be read or written inside methods of that struct that demonstrably
// hold <mu> — i.e. the method called <recv>.<mu>.Lock() (or RLock) earlier in
// its body, or the method's name ends in "Locked", the repository convention
// for helpers whose caller holds the lock.
//
// The check is deliberately syntactic and intra-package (no alias or
// escape analysis): it catches the common regression — a new method touching
// guarded state without locking — not adversarial code. Constructors are
// exempt by construction: they access fields through local variables, not a
// method receiver, and no other goroutine can hold a reference yet.
package lockcheck

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"hybridndp/internal/analysis"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       `fields annotated "guarded by mu" must be accessed with mu held`,
	SkipTests: true,
	Run:       run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedStruct records one annotated struct's guarded fields.
type guardedStruct struct {
	fields  map[string]string // field name → mutex field name
	mutexes map[string]bool   // declared field names, to validate annotations
}

func run(pass *analysis.Pass) error {
	structs := map[string]*guardedStruct{} // struct type name → annotations

	// Pass 1: collect "guarded by" annotations from struct declarations.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := &guardedStruct{fields: map[string]string{}, mutexes: map[string]bool{}}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					gs.mutexes[name.Name] = true
				}
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					gs.fields[name.Name] = mu
				}
			}
			if len(gs.fields) == 0 {
				return true
			}
			for fname, mu := range gs.fields {
				if !gs.mutexes[mu] {
					pass.Reportf(ts.Pos(), "field %s.%s is annotated guarded by %s, but %s has no field %s",
						ts.Name.Name, fname, mu, ts.Name.Name, mu)
				}
			}
			structs[ts.Name.Name] = gs
			return true
		})
	}
	if len(structs) == 0 {
		return nil
	}

	// Pass 2: check every method of an annotated struct.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			gs, ok := structs[tname]
			if !ok {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // convention: the caller holds the lock
			}
			if len(fd.Recv.List[0].Names) == 0 {
				continue // no receiver name: fields are unreachable
			}
			recv := fd.Recv.List[0].Names[0].Name
			checkMethod(pass, fd, recv, tname, gs)
		}
	}
	return nil
}

// guardAnnotation extracts the mutex name from a field's doc or line comment.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// recvTypeName unwraps *T / T receiver types to the bare type name.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	}
	return ""
}

// checkMethod reports guarded-field accesses not preceded by a lock of the
// guarding mutex within the method body.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recv, tname string, gs *guardedStruct) {
	// lockPos[mu] is the earliest position at which mu is demonstrably held.
	lockPos := map[string]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := inner.X.(*ast.Ident)
		if !ok || base.Name != recv {
			return true
		}
		mu := inner.Sel.Name
		if p, seen := lockPos[mu]; !seen || call.Pos() < p {
			lockPos[mu] = call.Pos()
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != recv {
			return true
		}
		mu, guarded := gs.fields[sel.Sel.Name]
		if !guarded {
			return true
		}
		if p, held := lockPos[mu]; held && p < sel.Pos() {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s.%s does not hold it here (lock %s.%s first, or name the method *Locked if the caller holds it)",
			tname, sel.Sel.Name, mu, tname, fd.Name.Name, recv, mu)
		return true
	})
}
