// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations embedded in the fixtures, mirroring the
// x/tools package of the same name (which is not available offline). A
// fixture line marks its expected diagnostic with a trailing comment:
//
//	time.Now() // want `wall-clock call`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; every diagnostic must match a want on its line, and
// every want must be matched by exactly one diagnostic. Fixtures live in
// GOPATH-style layout under testdata/src/<pkg>/, and may import sibling
// fixture packages by their directory name.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hybridndp/internal/analysis"
	"hybridndp/internal/analysis/load"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one `// want` comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src and applies the analyzer to the named fixture
// packages (directory names under testdata/src), comparing diagnostics
// against the `// want` expectations in those packages' files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	units, err := load.Tree(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	want := map[string]bool{}
	for _, p := range pkgs {
		want[p] = true
	}
	var selected []*analysis.Unit
	for _, u := range units {
		if want[u.Path] {
			selected = append(selected, u)
		}
	}
	if len(selected) != len(pkgs) {
		t.Fatalf("fixture packages %v: found %d of %d under %s", pkgs, len(selected), len(pkgs), testdata)
	}
	diags, err := analysis.Run(selected, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	expects := collectExpectations(t, selected)
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectExpectations scans the fixture files for `// want` comments.
func collectExpectations(t *testing.T, units []*analysis.Unit) []*expectation {
	t.Helper()
	var out []*expectation
	seen := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			name := u.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			b, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			for i, line := range strings.Split(string(b), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				out = append(out, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return out
}
