package vtunits_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/vtunits"
)

func TestVtunits(t *testing.T) {
	analysistest.Run(t, "../testdata", vtunits.Analyzer, "vtunits")
}
