// Package vtunits enforces the boundary between virtual and wall-clock time
// units and between the two cooperative timelines:
//
//   - A vclock.Duration must not be cast directly to time.Duration (use the
//     .Std() accessor) and a time.Duration must not be cast directly to
//     vclock.Duration (use vclock.FromStd) — the raw conversions compile, but
//     they erase the unit boundary the simulator's determinism rests on, and
//     they are how wall-clock measurements silently leak into virtual
//     accounting.
//   - Arithmetic must not combine instants read from two different
//     vclock.Timelines (e.g. host.Now() - dev.Now()): the host and device
//     clocks advance independently, so the difference is meaningless outside
//     a rendezvous. Cross-timeline synchronization goes through
//     Timeline.WaitUntil / vclock.MaxTime, which model the stall explicitly.
//
// The vclock package itself is exempt: it is where the blessed conversions
// are defined.
package vtunits

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hybridndp/internal/analysis"
)

// Analyzer is the vtunits check.
// Analyzer skips test files: tests routinely compare the elapsed clocks of
// two *alternative* simulation runs (e.g. sequential vs random scans), which
// is cross-timeline only syntactically — the instants are measurements of
// separate executions, not concurrent clocks of one.
var Analyzer = &analysis.Analyzer{
	Name:      "vtunits",
	Doc:       "forbid raw vclock/time unit conversions and cross-timeline instant arithmetic",
	SkipTests: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	if pass.Path == "vclock" || strings.HasSuffix(pass.Path, "/vclock") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, e)
				checkSubAdd(pass, e)
			case *ast.BinaryExpr:
				checkBinary(pass, e)
			}
			return true
		})
	}
	return nil
}

// isVclockType reports whether t is the named type vclock.<name>.
func isVclockType(t types.Type, name string) bool {
	nt, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := nt.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "vclock" || strings.HasSuffix(p, "/vclock")
}

// isTimeType reports whether t is the named type time.<name>.
func isTimeType(t types.Type, name string) bool {
	nt, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := nt.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// checkConversion flags raw casts across the vclock/time unit boundary.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isTimeType(dst, "Duration") && isVclockType(src, "Duration"):
		pass.Reportf(call.Pos(), "raw conversion time.Duration(%s) from vclock.Duration: use the .Std() accessor", render(call.Args[0]))
	case isTimeType(dst, "Duration") && isVclockType(src, "Time"):
		pass.Reportf(call.Pos(), "raw conversion time.Duration(%s) from vclock.Time: use the .Std() accessor", render(call.Args[0]))
	case isVclockType(dst, "Duration") && isTimeType(src, "Duration"):
		pass.Reportf(call.Pos(), "raw conversion vclock.Duration(%s) from time.Duration: use vclock.FromStd", render(call.Args[0]))
	case isVclockType(dst, "Time") && isTimeType(src, "Duration"):
		pass.Reportf(call.Pos(), "raw conversion vclock.Time(%s) from time.Duration: wall-clock time must not seed a virtual instant", render(call.Args[0]))
	}
}

// timelineRoots collects the receivers of <x>.Now() calls (where x is a
// *vclock.Timeline) within e, rendered as source text. Two distinct roots in
// one arithmetic expression mean two independent clocks are being mixed.
func timelineRoots(pass *analysis.Pass, e ast.Expr) map[string]bool {
	roots := map[string]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		t := pass.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if isVclockType(t, "Timeline") {
			roots[render(sel.X)] = true
		}
		return true
	})
	return roots
}

func union(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// checkBinary flags binary arithmetic/comparison combining instants from two
// different timelines.
func checkBinary(pass *analysis.Pass, e *ast.BinaryExpr) {
	switch e.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	roots := union(timelineRoots(pass, e.X), timelineRoots(pass, e.Y))
	if len(roots) > 1 {
		pass.Reportf(e.Pos(), "expression combines instants from different timelines (%s): rendezvous via Timeline.WaitUntil or vclock.MaxTime instead",
			joinKeys(roots))
	}
}

// checkSubAdd flags t.Sub(u) / t.Add(d) where t and u come from different
// timelines.
func checkSubAdd(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Sub" && sel.Sel.Name != "Add") || len(call.Args) != 1 {
		return
	}
	recvT := pass.TypeOf(sel.X)
	if recvT == nil || !isVclockType(recvT, "Time") {
		return
	}
	roots := union(timelineRoots(pass, sel.X), timelineRoots(pass, call.Args[0]))
	if len(roots) > 1 {
		pass.Reportf(call.Pos(), "%s.%s combines instants from different timelines (%s): rendezvous via Timeline.WaitUntil or vclock.MaxTime instead",
			render(sel.X), sel.Sel.Name, joinKeys(roots))
	}
}

func joinKeys(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func render(e ast.Expr) string {
	var b bytes.Buffer
	_ = printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}
