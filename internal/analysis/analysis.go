// Package analysis is a minimal, dependency-free reimplementation of the
// go/analysis driver model (golang.org/x/tools is not vendored in this
// repository, and the build is fully offline). It provides just enough of the
// Analyzer / Pass / Diagnostic vocabulary for the hybridlint suite: analyzers
// receive a type-checked package and report position-tagged diagnostics; the
// driver filters them through the `//lint:allow` directive mechanism.
//
// Directives: a comment of the form
//
//	//lint:allow <analyzer> [reason...]
//
// suppresses diagnostics of <analyzer> on the same line and on the line
// directly below (so the directive can trail the offending expression or sit
// on its own line above it). Directives are only honored inside packages the
// analyzer explicitly allow-lists (Analyzer.AllowIn); anywhere else the
// directive itself is reported as a violation, so suppressions cannot creep
// into the simulator unnoticed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Packages restricts the analyzer to packages whose import path's final
	// segment is in the list. Empty means every package.
	Packages []string
	// AllowIn lists package-path suffixes in which //lint:allow directives
	// for this analyzer are honored. A directive in any other package is
	// itself a diagnostic.
	AllowIn []string
	// SkipTests excludes _test.go files from the pass.
	SkipTests bool
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

var directiveRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_]+)(\s|$)`)

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	pos      token.Position
}

// collectDirectives parses every //lint:allow comment in the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, directive{analyzer: m[1], pos: fset.Position(c.Pos())})
			}
		}
	}
	return out
}

// pathMatches reports whether the package path matches any entry in list:
// the full path, a "/"-delimited suffix of it (entry "sched" matches
// "hybridndp/internal/sched"), or the reverse (a bare fixture path "hw"
// matches the entry "internal/hw").
func pathMatches(path string, list []string) bool {
	for _, s := range list {
		if path == s || strings.HasSuffix(path, "/"+s) || strings.HasSuffix(s, "/"+path) {
			return true
		}
	}
	return false
}

// Unit is one loadable package: files plus type information.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies every analyzer to every unit, resolves //lint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, u := range units {
		dirs := collectDirectives(u.Fset, u.Files)
		for _, a := range analyzers {
			if len(a.Packages) > 0 && !pathMatches(u.Path, a.Packages) {
				// Out-of-scope package: a directive naming this analyzer is
				// dead weight but not a violation (nothing can be suppressed).
				continue
			}
			files := u.Files
			if a.SkipTests {
				files = nil
				for _, f := range u.Files {
					if !strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
						files = append(files, f)
					}
				}
			}
			pass := &Pass{Analyzer: a, Fset: u.Fset, Files: files, Path: u.Path, Pkg: u.Pkg, Info: u.Info}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
			}
			all = append(all, filterAllowed(pass.diags, dirs, a, u.Path)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := all[i].Pos, all[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// filterAllowed drops diagnostics suppressed by a directive in an allow-listed
// package and reports directives that appear outside the allow-list.
func filterAllowed(diags []Diagnostic, dirs []directive, a *Analyzer, path string) []Diagnostic {
	inAllowList := pathMatches(path, a.AllowIn)
	// Lines covered by a directive for this analyzer: the directive's own
	// line and the line below it.
	covered := map[string]map[int]bool{}
	var out []Diagnostic
	for _, d := range dirs {
		if d.analyzer != a.Name {
			continue
		}
		if !inAllowList {
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Pos:      d.pos,
				Message: fmt.Sprintf("//lint:allow %s is not permitted in package %s (allow-list: %s)",
					a.Name, path, strings.Join(a.AllowIn, ", ")),
			})
			continue
		}
		if covered[d.pos.Filename] == nil {
			covered[d.pos.Filename] = map[int]bool{}
		}
		covered[d.pos.Filename][d.pos.Line] = true
		covered[d.pos.Filename][d.pos.Line+1] = true
	}
	for _, d := range diags {
		if covered[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
