// Package analysis is a minimal, dependency-free reimplementation of the
// go/analysis driver model (golang.org/x/tools is not vendored in this
// repository, and the build is fully offline). It provides just enough of the
// Analyzer / Pass / Diagnostic vocabulary for the hybridlint suite: analyzers
// receive a type-checked package and report position-tagged diagnostics; the
// driver filters them through the `//lint:allow` directive mechanism.
//
// Directives: a comment of the form
//
//	//lint:allow <analyzer> [reason...]
//
// suppresses diagnostics of <analyzer> on the same line and on the line
// directly below (so the directive can trail the offending expression or sit
// on its own line above it). Directives are only honored inside packages the
// analyzer explicitly allow-lists (Analyzer.AllowIn); anywhere else the
// directive itself is reported as a violation, so suppressions cannot creep
// into the simulator unnoticed.
//
// Facts: an analyzer may attach a Fact to a types.Object (typically a
// *types.Func) with Pass.ExportObjectFact and query it later with
// Pass.ImportObjectFact, mirroring go/analysis object facts. Units are
// analyzed in the order the loader produced them — dependencies before
// dependents (load.Module and load.Tree both type-check in topological
// order) — so a fact exported while analyzing internal/flash is visible when
// the same analyzer reaches internal/device. Facts are scoped per analyzer
// per Run: two analyzers never see each other's facts.
//
// The driver runs the analyzers of one Run call concurrently (one goroutine
// per analyzer, each walking the units sequentially so facts stay ordered)
// and merges their diagnostics into one deterministic, fully sorted list.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Packages restricts the analyzer to packages whose import path's final
	// segment is in the list. Empty means every package.
	Packages []string
	// AllowIn lists package-path suffixes in which //lint:allow directives
	// for this analyzer are honored. A directive in any other package is
	// itself a diagnostic.
	AllowIn []string
	// SkipTests excludes _test.go files from the pass.
	SkipTests bool
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Fact is a datum an analyzer attaches to a types.Object so that later
// passes of the same analyzer — in the same package or in a downstream
// package — can query it. Implementations are plain structs with the AFact
// marker method, mirroring golang.org/x/tools/go/analysis.
type Fact interface{ AFact() }

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info

	facts map[types.Object]Fact // shared across the analyzer's units, in load order
	diags []Diagnostic
}

// ExportObjectFact associates fact with obj for the rest of this analyzer's
// run. Object identity is preserved across packages by the loader (module-
// internal imports resolve to the already-checked *types.Package), so a fact
// exported on a function while analyzing its defining package is found again
// from call sites in importing packages. Exporting twice overwrites.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || fact == nil {
		return
	}
	p.facts[obj] = fact
}

// ImportObjectFact returns the fact previously exported on obj by this
// analyzer, if any.
func (p *Pass) ImportObjectFact(obj types.Object) (Fact, bool) {
	if obj == nil {
		return nil, false
	}
	f, ok := p.facts[obj]
	return f, ok
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

var directiveRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_]+)(\s|$)`)

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	pos      token.Position
}

// collectDirectives parses every //lint:allow comment in the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, directive{analyzer: m[1], pos: fset.Position(c.Pos())})
			}
		}
	}
	return out
}

// pathMatches reports whether the package path matches any entry in list:
// the full path, a "/"-delimited suffix of it (entry "sched" matches
// "hybridndp/internal/sched"), or the reverse (a bare fixture path "hw"
// matches the entry "internal/hw").
func pathMatches(path string, list []string) bool {
	for _, s := range list {
		if path == s || strings.HasSuffix(path, "/"+s) || strings.HasSuffix(s, "/"+path) {
			return true
		}
	}
	return false
}

// Unit is one loadable package: files plus type information.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies every analyzer to every unit, resolves //lint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Analyzers run concurrently (one goroutine each); within one analyzer the
// units are visited strictly in the order given, which the loaders guarantee
// to be dependency order, so object facts flow from defining packages to
// importing packages. The merged output is fully ordered (file, line,
// column, analyzer, message) and therefore independent of goroutine
// interleaving.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := make([][]directive, len(units))
	for i, u := range units {
		dirs[i] = collectDirectives(u.Fset, u.Files)
	}
	results := make([][]Diagnostic, len(analyzers))
	errs := make([]error, len(analyzers))
	var wg sync.WaitGroup
	for ai := range analyzers {
		wg.Add(1)
		go func(ai int) {
			defer wg.Done()
			results[ai], errs[ai] = runOne(units, dirs, analyzers[ai])
		}(ai)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []Diagnostic
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := all[i].Pos, all[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})
	return all, nil
}

// runOne walks the units in load order for a single analyzer, threading one
// fact store through every pass.
func runOne(units []*Unit, dirs [][]directive, a *Analyzer) ([]Diagnostic, error) {
	facts := map[types.Object]Fact{}
	var out []Diagnostic
	for i, u := range units {
		if len(a.Packages) > 0 && !pathMatches(u.Path, a.Packages) {
			// Out-of-scope package: a directive naming this analyzer is
			// dead weight but not a violation (nothing can be suppressed).
			continue
		}
		files := u.Files
		if a.SkipTests {
			files = nil
			for _, f := range u.Files {
				if !strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
					files = append(files, f)
				}
			}
		}
		pass := &Pass{Analyzer: a, Fset: u.Fset, Files: files, Path: u.Path, Pkg: u.Pkg, Info: u.Info, facts: facts}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
		}
		out = append(out, filterAllowed(pass.diags, dirs[i], a, u.Path)...)
	}
	return out, nil
}

// filterAllowed drops diagnostics suppressed by a directive in an allow-listed
// package and reports directives that appear outside the allow-list.
func filterAllowed(diags []Diagnostic, dirs []directive, a *Analyzer, path string) []Diagnostic {
	inAllowList := pathMatches(path, a.AllowIn)
	// Lines covered by a directive for this analyzer: the directive's own
	// line and the line below it.
	covered := map[string]map[int]bool{}
	var out []Diagnostic
	for _, d := range dirs {
		if d.analyzer != a.Name {
			continue
		}
		if !inAllowList {
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Pos:      d.pos,
				Message: fmt.Sprintf("//lint:allow %s is not permitted in package %s (allow-list: %s)",
					a.Name, path, strings.Join(a.AllowIn, ", ")),
			})
			continue
		}
		if covered[d.pos.Filename] == nil {
			covered[d.pos.Filename] = map[int]bool{}
		}
		covered[d.pos.Filename][d.pos.Line] = true
		covered[d.pos.Filename][d.pos.Line+1] = true
	}
	for _, d := range diags {
		if covered[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
