package chargecheck_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/chargecheck"
)

// The three packages are analyzed in dependency order (flash, ftl, coop), so
// the charges facts exported for flash.ReadAt and ftl.ChargedTransfer are
// imported when the coop fixtures are checked — the cross-package half of
// the analyzer is exercised, not just the intra-package fixpoint.
func TestChargecheck(t *testing.T) {
	analysistest.Run(t, "../testdata", chargecheck.Analyzer, "flash", "ftl", "coop")
}
