// Package chargecheck enforces the simulator's core accounting invariant:
// every modeled I/O — a flash read or write, a device batch emission, a
// host-side fetch of a device batch — must charge virtual time to a
// vclock.Timeline. The cost model's split decisions (paper §4) are computed
// from timeline accounts, so an I/O path that moves modeled bytes without a
// Charge silently biases every offload decision built on top of it.
//
// The check is fact-based and whole-program: a function that charges a
// timeline — directly via Timeline.Charge / Timeline.WaitUntil, or by
// calling a callee already known to charge — exports a "charges" object fact
// that importing packages see (flash.ReadAt charges internally, so an lsm
// read through it is covered without lsm charging again). A modeled-I/O call
// site is then flagged when neither holds: the callee carries no charges
// fact AND the enclosing top-level function never charges anything.
//
// Modeled-I/O call sites are:
//
//   - methods ReadAt / ReadAtSeq / ReadFile / WriteFile on a type from a
//     package whose path ends in "flash" (the flash channel),
//   - dynamic calls of a func(device.Batch) error value (the device → host
//     batch emission surface: Device.Run / RunShard emit callbacks),
//   - methods Run / RunShard / RunPartition / ScanLeafPartition on a type
//     named Device from a package whose path ends in "device".
//
// Like lockcheck, the analysis is deliberately approximate: "the enclosing
// function charges" is a containment check, not a dominator analysis, so a
// charge on one branch excuses an emission on another. The fact computation
// additionally records whether a function charges on *every* control-flow
// path (see pathcharge.go); the strong form is exported for downstream
// tooling but the site rule accepts the weak form, trading path precision
// for a near-zero false-positive rate on the buffering/merge patterns the
// executors legitimately use. What it reliably catches is the regression
// that motivates it: a new I/O surface wired up with no accounting at all.
package chargecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hybridndp/internal/analysis"
)

// SimPackages mirrors wallclock's list: the packages whose I/O must be
// accounted (duplicated here so the analyzer stays self-contained).
var SimPackages = []string{"vclock", "coop", "exec", "ftl", "lsm", "flash", "sched", "device", "hw", "obs", "fault", "fleet", "serve"}

// ChargesFact marks a function that charges a vclock.Timeline: on at least
// one path (weak form), or on every terminating path (Always).
type ChargesFact struct {
	Always bool
}

// AFact marks ChargesFact as an analysis fact.
func (*ChargesFact) AFact() {}

// Analyzer is the chargecheck check.
var Analyzer = &analysis.Analyzer{
	Name:      "chargecheck",
	Doc:       "modeled I/O (flash reads, batch emits) must charge a vclock.Timeline, directly or via a fact-carrying callee",
	Packages:  SimPackages,
	AllowIn:   []string{"internal/device", "internal/coop", "internal/fleet"},
	SkipTests: true,
	Run:       run,
}

// flashIOMethods are the flash-channel surfaces.
var flashIOMethods = map[string]bool{
	"ReadAt": true, "ReadAtSeq": true, "ReadFile": true, "WriteFile": true,
}

// deviceIOMethods are the device execution surfaces that stream batches.
var deviceIOMethods = map[string]bool{
	"Run": true, "RunShard": true, "RunPartition": true, "ScanLeafPartition": true,
}

func run(pass *analysis.Pass) error {
	if isPkg(pass.Path, "vclock") {
		// The package defining Charge/WaitUntil is the mechanism, not a user.
		return nil
	}

	funcs := collectFuncs(pass)
	computeCharges(pass, funcs)

	// Report modeled-I/O sites that are covered by neither the callee's fact
	// nor a charge in the enclosing top-level function.
	for _, fn := range funcs {
		if fn.charges {
			continue
		}
		for _, site := range fn.ioSites {
			pass.Reportf(site.pos, "modeled I/O %s in %s, which never charges a vclock.Timeline on any path (charge directly or route through a charging helper)",
				site.desc, fn.name)
		}
	}
	return nil
}

// funcInfo is one top-level function's accounting summary. Nested function
// literals are folded into their enclosing declaration: a charge inside a
// closure counts for the whole function, and an I/O site inside a closure is
// attributed to it.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	name    string
	charges bool // charges a timeline somewhere (weak form)
	always  bool // charges on every terminating path (strong form)
	callees []*types.Func
	ioSites []ioSite
}

type ioSite struct {
	pos  token.Pos
	desc string
}

func collectFuncs(pass *analysis.Pass) []*funcInfo {
	var out []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &funcInfo{decl: fd, name: funcLabel(fd)}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				fn.obj = obj
			}
			scanBody(pass, fd.Body, fn)
			out = append(out, fn)
		}
	}
	return out
}

// funcLabel renders "Recv.Name" or "Name" for messages.
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// scanBody records direct charges, callees, and modeled-I/O sites of one
// function body (nested literals included).
func scanBody(pass *analysis.Pass, body *ast.BlockStmt, fn *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isDirectCharge(pass, call) {
			fn.charges = true
			return true
		}
		if callee := calleeFunc(pass, call); callee != nil {
			fn.callees = append(fn.callees, callee)
			if m, kind := ioMethod(pass, call, callee); kind != "" {
				fn.ioSites = append(fn.ioSites, ioSite{pos: call.Pos(), desc: kind + " " + m})
			}
			return true
		}
		// Dynamic call: a func-typed variable, parameter or field. The batch
		// emission surface is the error-returning emit callback.
		if desc, ok := emitCall(pass, call); ok {
			fn.ioSites = append(fn.ioSites, ioSite{pos: call.Pos(), desc: desc})
		}
		return true
	})
	fn.always = chargesOnAllPaths(pass, body, nil)
}

// computeCharges runs the intra-package fixpoint over the callee graph and
// exports facts. Cross-package callees contribute through previously
// imported facts (the driver analyzes dependencies first).
func computeCharges(pass *analysis.Pass, funcs []*funcInfo) {
	calleeCharges := func(fn *funcInfo, local map[*types.Func]bool) bool {
		for _, c := range fn.callees {
			if local[c] {
				return true
			}
			if _, ok := pass.ImportObjectFact(c); ok {
				return true
			}
		}
		return false
	}
	local := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if fn.charges {
				if fn.obj != nil && !local[fn.obj] {
					local[fn.obj] = true
					changed = true
				}
				continue
			}
			if calleeCharges(fn, local) {
				fn.charges = true
				if fn.obj != nil && !local[fn.obj] {
					local[fn.obj] = true
					changed = true
				}
			}
		}
	}
	for _, fn := range funcs {
		if fn.charges && fn.obj != nil {
			// The strong form also needs every callee-based path to charge;
			// keep it honest by requiring the syntactic all-paths result to
			// have seen either a direct charge or a charging callee on every
			// path (chargesOnAllPaths already consults the same fact store).
			pass.ExportObjectFact(fn.obj, &ChargesFact{Always: fn.always})
		}
	}
	// Second pass over all-paths now that local facts exist: a function whose
	// every path calls a just-discovered charging sibling upgrades to Always.
	for _, fn := range funcs {
		if fn.charges && fn.obj != nil && !fn.always {
			if chargesOnAllPaths(pass, fn.decl.Body, local) {
				pass.ExportObjectFact(fn.obj, &ChargesFact{Always: true})
			}
		}
	}
}

// isDirectCharge reports whether call is Timeline.Charge or Timeline.WaitUntil
// on a vclock Timeline value.
func isDirectCharge(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Charge" && sel.Sel.Name != "WaitUntil" {
		return false
	}
	return isNamedType(pass.TypeOf(sel.X), "vclock", "Timeline")
}

// calleeFunc resolves the static callee of a call, or nil for dynamic calls,
// conversions and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if f, ok := pass.Info.Uses[id].(*types.Func); ok {
		return f
	}
	return nil
}

// ioMethod classifies a resolved method call as a modeled-I/O surface.
func ioMethod(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) (name, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil {
		return "", ""
	}
	if flashIOMethods[callee.Name()] && isNamedTypeAny(recv, "flash") {
		return typeLabel(recv) + "." + callee.Name(), "flash access"
	}
	if deviceIOMethods[callee.Name()] && isNamedType(recv, "device", "Device") {
		return "Device." + callee.Name(), "device execution"
	}
	return "", ""
}

// emitCall reports whether call invokes a func(device.Batch) error value —
// the batch emission callback type.
func emitCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return "", false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "", false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return "", false
	}
	if !isNamedType(sig.Params().At(0).Type(), "device", "Batch") {
		return "", false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return "", false
	}
	return "batch emit " + exprLabel(call.Fun), true
}

// isNamedType reports whether t (possibly a pointer) is the named type
// pkgSuffix.name, matching the package by import-path suffix so fixture
// stubs stand in for the real packages.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return isPkg(obj.Pkg().Path(), pkgSuffix)
}

// isNamedTypeAny is isNamedType without pinning the type name.
func isNamedTypeAny(t types.Type, pkgSuffix string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && isPkg(obj.Pkg().Path(), pkgSuffix)
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func isPkg(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// typeLabel renders the receiver type's bare name.
func typeLabel(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return t.String()
}

// exprLabel renders a short label for the called expression.
func exprLabel(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprLabel(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprLabel(v.X)
	}
	return "callback"
}
