// Path-sensitive "charges on every path" analysis: a conservative abstract
// interpretation over the statement structure. It exists to compute the
// strong form of ChargesFact (Always) — the weak containment form drives the
// diagnostics, see the package comment for why.
package chargecheck

import (
	"go/ast"
	"go/types"

	"hybridndp/internal/analysis"
)

// chargesOnAllPaths reports whether every terminating path through body
// passes a charging call: a direct Timeline.Charge / WaitUntil, a call to a
// function in local (the intra-package fixpoint set), or a call to a callee
// carrying an imported ChargesFact. A defer of a charging call covers every
// exit after its registration. Loop bodies and else-less if branches may run
// zero times, so they never satisfy the requirement on their own; a panic
// terminates its path without needing a charge.
func chargesOnAllPaths(pass *analysis.Pass, body *ast.BlockStmt, local map[*types.Func]bool) bool {
	w := &pathWalker{pass: pass, local: local, ok: true}
	after, term := w.stmts(body.List, false)
	return w.ok && (term || after)
}

// pathWalker carries the verdict across the walk.
type pathWalker struct {
	pass  *analysis.Pass
	local map[*types.Func]bool
	ok    bool // no uncharged terminating path seen yet
}

// stmts interprets a statement list starting with the given charged state.
// It returns the charged state at the fall-through exit and whether every
// path through the list terminates (returns, panics, or branches away).
func (w *pathWalker) stmts(list []ast.Stmt, charged bool) (after, terminated bool) {
	for _, s := range list {
		var term bool
		charged, term = w.stmt(s, charged)
		if term {
			return charged, true
		}
	}
	return charged, false
}

func (w *pathWalker) stmt(s ast.Stmt, charged bool) (after, terminated bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		if !charged && !w.chargesIn(st) {
			w.ok = false
		}
		return charged, true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; the target's returns are
		// validated where they occur.
		return charged, true
	case *ast.ExprStmt:
		if isPanic(st.X) {
			return charged, true
		}
		return charged || w.chargesIn(st), false
	case *ast.DeferStmt:
		// A deferred charging call (or a deferred closure containing one)
		// runs at every subsequent exit.
		if w.chargesInCall(st.Call) || w.chargesIn(st.Call) {
			return true, false
		}
		return charged, false
	case *ast.BlockStmt:
		return w.stmts(st.List, charged)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, charged)
	case *ast.IfStmt:
		cond := charged || w.chargesInExprs(st.Init, st.Cond)
		thenAfter, thenTerm := w.stmts(st.Body.List, cond)
		elseAfter, elseTerm := cond, false
		if st.Else != nil {
			elseAfter, elseTerm = w.stmt(st.Else, cond)
		}
		switch {
		case thenTerm && elseTerm:
			return cond, true
		case thenTerm:
			return elseAfter, false
		case elseTerm:
			return thenAfter, false
		default:
			return thenAfter && elseAfter, false
		}
	case *ast.ForStmt:
		bodyCharged := charged || w.chargesInExprs(st.Init, st.Cond)
		w.stmts(st.Body.List, bodyCharged) // validate returns inside
		return charged, false              // zero iterations possible
	case *ast.RangeStmt:
		w.stmts(st.Body.List, charged)
		return charged, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.clauses(s, charged)
	default:
		return charged || w.chargesIn(s), false
	}
}

// clauses interprets switch/type-switch/select uniformly. A select always
// runs one clause; a switch only covers all paths when it has a default.
func (w *pathWalker) clauses(s ast.Stmt, charged bool) (after, terminated bool) {
	var bodies [][]ast.Stmt
	exhaustive := false
	switch st := s.(type) {
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			if cc.List == nil {
				exhaustive = true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			if cc.List == nil {
				exhaustive = true
			}
		}
	case *ast.SelectStmt:
		exhaustive = true // one clause always runs (blocking select)
		for _, c := range st.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
	}
	if len(bodies) == 0 {
		return charged, false
	}
	allAfter, allTerm := true, true
	for _, b := range bodies {
		a, t := w.stmts(b, charged)
		if !t {
			allTerm = false
			if !a {
				allAfter = false
			}
		}
	}
	if exhaustive && allTerm {
		return charged, true
	}
	if exhaustive && allAfter {
		return true, false
	}
	return charged, false
}

// chargesIn reports whether the node contains a charging call, skipping
// nested function literals (their bodies only run if called).
func (w *pathWalker) chargesIn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && w.chargesInCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// chargesInExprs is chargesIn over an optional init statement and condition.
func (w *pathWalker) chargesInExprs(init ast.Stmt, cond ast.Expr) bool {
	if init != nil && w.chargesIn(init) {
		return true
	}
	return cond != nil && w.chargesIn(cond)
}

// chargesInCall classifies one call expression as charging.
func (w *pathWalker) chargesInCall(call *ast.CallExpr) bool {
	if isDirectCharge(w.pass, call) {
		return true
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked or deferred literal: its body runs here.
		return w.chargesIn(lit.Body)
	}
	callee := calleeFunc(w.pass, call)
	if callee == nil {
		return false
	}
	if w.local[callee] {
		return true
	}
	_, ok := w.pass.ImportObjectFact(callee)
	return ok
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
