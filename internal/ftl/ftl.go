// Package ftl simulates the GreedyFTL flash translation layer that the
// paper's BLK baseline runs on the COSMOS+ board ("GreedyFTL with 1 MB DRAM
// cache to maintain the block-device compatibility", §5). The simulator
// implements page-level mapping with a bounded DRAM mapping cache and greedy
// garbage collection, and is used to *calibrate* the BLK stack's abstraction
// tax: CalibrateBlockOverhead replays a mixed read workload and reports how
// much slower the block path is than a direct native read, which is where
// the hardware model's BlockStackOverheadPct comes from.
package ftl

import (
	"fmt"
	"math/rand"
)

// Geometry describes the simulated NAND layout.
type Geometry struct {
	PageBytes     int64
	PagesPerBlock int
	Blocks        int
	// OverprovisionPct reserves spare blocks for GC headroom.
	OverprovisionPct float64
}

// DefaultGeometry approximates the COSMOS+ module at simulator scale.
func DefaultGeometry() Geometry {
	return Geometry{
		PageBytes:        16 << 10,
		PagesPerBlock:    256,
		Blocks:           8192, // 32 GiB span: mapping table 8× the 1 MB cache
		OverprovisionPct: 7,
	}
}

// Stats counts FTL activity.
type Stats struct {
	HostWrites  int64 // logical page writes requested
	FlashWrites int64 // physical page programs (incl. GC relocation)
	HostReads   int64
	MapHits     int64
	MapMisses   int64 // mapping-page fetches from flash
	GCRuns      int64
	Relocations int64
	Erases      int64
}

// WriteAmplification is physical writes per host write.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.FlashWrites) / float64(s.HostWrites)
}

// MapMissRate is the fraction of host reads that required a mapping fetch.
func (s Stats) MapMissRate() float64 {
	total := s.MapHits + s.MapMisses
	if total == 0 {
		return 0
	}
	return float64(s.MapMisses) / float64(total)
}

const invalid = -1

// FTL is a page-mapped flash translation layer with greedy GC.
type FTL struct {
	geo Geometry

	l2p []int32 // logical page → physical page (or -1)
	p2l []int32 // physical page → logical page (or -1 when free/invalid)

	blockValid []int // valid pages per block
	blockUsed  []int // programmed pages per block (sequential program constraint)
	freeBlocks []int
	openBlock  int
	openOff    int

	// Mapping cache: the paper's 1 MB DRAM cache holds a subset of the
	// mapping table. One cached "map page" covers entriesPerMapPage
	// consecutive logical pages; lookups outside the cached set fetch the
	// map page from flash first.
	mapCacheCap int // map pages that fit in the DRAM budget
	mapCache    map[int32]struct{}
	mapLRU      []int32

	stats Stats
}

// entriesPerMapPage: 4-byte entries in one flash page.
func (f *FTL) entriesPerMapPage() int32 { return int32(f.geo.PageBytes / 4) }

// New creates an FTL with the given geometry and mapping-cache budget in
// bytes (the paper's BLK setup uses 1 MB).
func New(geo Geometry, mapCacheBytes int64) (*FTL, error) {
	if geo.PageBytes <= 0 || geo.PagesPerBlock <= 0 || geo.Blocks <= 2 {
		return nil, fmt.Errorf("ftl: degenerate geometry %+v", geo)
	}
	total := geo.Blocks * geo.PagesPerBlock
	f := &FTL{
		geo:        geo,
		l2p:        make([]int32, total),
		p2l:        make([]int32, total),
		blockValid: make([]int, geo.Blocks),
		blockUsed:  make([]int, geo.Blocks),
		mapCache:   make(map[int32]struct{}),
	}
	for i := range f.l2p {
		f.l2p[i] = invalid
		f.p2l[i] = invalid
	}
	for b := geo.Blocks - 1; b >= 0; b-- {
		f.freeBlocks = append(f.freeBlocks, b)
	}
	f.openBlock = f.popFree()
	mapPageBytes := f.geo.PageBytes
	f.mapCacheCap = int(mapCacheBytes / mapPageBytes)
	if f.mapCacheCap < 1 {
		f.mapCacheCap = 1
	}
	return f, nil
}

// LogicalPages reports the usable logical page count (capacity minus
// over-provisioning).
func (f *FTL) LogicalPages() int {
	total := f.geo.Blocks * f.geo.PagesPerBlock
	return total - int(float64(total)*f.geo.OverprovisionPct/100) - f.geo.PagesPerBlock
}

// Stats returns a snapshot of the counters.
func (f *FTL) Stats() Stats { return f.stats }

func (f *FTL) popFree() int {
	if len(f.freeBlocks) == 0 {
		return -1
	}
	b := f.freeBlocks[len(f.freeBlocks)-1]
	f.freeBlocks = f.freeBlocks[:len(f.freeBlocks)-1]
	return b
}

// touchMap simulates the mapping-cache lookup for a logical page; a miss
// costs one extra flash read (counted, and reported to the caller).
func (f *FTL) touchMap(lpn int32) bool {
	mp := lpn / f.entriesPerMapPage()
	if _, ok := f.mapCache[mp]; ok {
		f.stats.MapHits++
		return true
	}
	f.stats.MapMisses++
	// Insert with FIFO-ish eviction (GreedyFTL keeps it simple).
	if len(f.mapCache) >= f.mapCacheCap {
		old := f.mapLRU[0]
		f.mapLRU = f.mapLRU[1:]
		delete(f.mapCache, old)
	}
	f.mapCache[mp] = struct{}{}
	f.mapLRU = append(f.mapLRU, mp)
	return false
}

// Read resolves a logical page. It reports whether the mapping was cached
// (miss ⇒ one extra physical read) and whether the page was ever written.
func (f *FTL) Read(lpn int32) (mapped bool, cached bool, err error) {
	if int(lpn) < 0 || int(lpn) >= len(f.l2p) {
		return false, false, fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	f.stats.HostReads++
	cached = f.touchMap(lpn)
	return f.l2p[lpn] != invalid, cached, nil
}

// Write programs a logical page (out-of-place), running greedy GC when the
// free-block pool drains.
func (f *FTL) Write(lpn int32) error {
	if int(lpn) < 0 || int(lpn) >= len(f.l2p) {
		return fmt.Errorf("ftl: logical page %d out of range", lpn)
	}
	f.stats.HostWrites++
	f.touchMap(lpn)
	return f.program(lpn)
}

// programAt writes lpn to the given block/offset, maintaining both mapping
// directions and the validity counters.
func (f *FTL) programAt(lpn int32, block, off int) {
	if old := f.l2p[lpn]; old != invalid {
		f.p2l[old] = invalid
		f.blockValid[old/int32(f.geo.PagesPerBlock)]--
	}
	ppn := int32(block*f.geo.PagesPerBlock + off)
	f.blockUsed[block]++
	f.blockValid[block]++
	f.l2p[lpn] = ppn
	f.p2l[ppn] = lpn
	f.stats.FlashWrites++
}

func (f *FTL) program(lpn int32) error {
	if f.openOff >= f.geo.PagesPerBlock {
		if len(f.freeBlocks) == 0 {
			// gc installs a fresh open block with the survivors in front.
			if err := f.gc(); err != nil {
				return err
			}
		} else {
			f.openBlock = f.popFree()
			f.openOff = 0
		}
		if f.openOff >= f.geo.PagesPerBlock {
			return fmt.Errorf("ftl: out of space (all blocks valid)")
		}
	}
	f.programAt(lpn, f.openBlock, f.openOff)
	f.openOff++
	return nil
}

// gc runs one round of greedy garbage collection: pick the fully-programmed
// block with the fewest valid pages, relocate its survivors into a fresh
// destination block (which becomes the open block), and erase the victim.
// This never recurses into program — the destination is reserved up front,
// which is what over-provisioning exists for.
func (f *FTL) gc() error {
	f.stats.GCRuns++
	victim := -1
	best := 1 << 30
	for b := 0; b < f.geo.Blocks; b++ {
		if b == f.openBlock || f.blockUsed[b] < f.geo.PagesPerBlock {
			continue
		}
		if f.blockValid[b] < best {
			best = f.blockValid[b]
			victim = b
		}
	}
	if victim < 0 {
		return fmt.Errorf("ftl: no GC victim available")
	}
	// Erase first: the victim itself becomes the relocation destination
	// when no other free block exists (its survivors are held via p2l).
	start := int32(victim * f.geo.PagesPerBlock)
	var survivors []int32
	for off := int32(0); off < int32(f.geo.PagesPerBlock); off++ {
		if lpn := f.p2l[start+off]; lpn != invalid {
			survivors = append(survivors, lpn)
			f.p2l[start+off] = invalid
			f.l2p[lpn] = invalid // re-programmed below
		}
	}
	f.blockUsed[victim] = 0
	f.blockValid[victim] = 0
	f.stats.Erases++

	f.openBlock = victim
	f.openOff = 0
	for _, lpn := range survivors {
		f.stats.Relocations++
		f.programAt(lpn, f.openBlock, f.openOff)
		f.openOff++
	}
	if f.openOff >= f.geo.PagesPerBlock {
		// Fully-valid victim: nothing was reclaimed.
		return fmt.Errorf("ftl: out of space (GC victim fully valid)")
	}
	return nil
}

// CalibrationResult is the outcome of replaying the calibration workload.
type CalibrationResult struct {
	Stats Stats
	// OverheadPct is the extra per-read cost of the block path relative to
	// a direct native read: map-cache misses add one physical read each.
	OverheadPct float64
}

// CalibrateBlockOverhead fills the device to the given utilization with an
// update-heavy pass (forcing steady-state GC), then replays a mixed
// random/sequential read workload through the mapping cache. The returned
// overhead percentage is the source of the hardware model's
// BlockStackOverheadPct: every mapping miss costs one extra flash read on
// the block path.
func CalibrateBlockOverhead(geo Geometry, mapCacheBytes int64, seed int64) (CalibrationResult, error) {
	f, err := New(geo, mapCacheBytes)
	if err != nil {
		return CalibrationResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	logical := f.LogicalPages()

	// Fill to ~85% then update 30% of pages at random (steady-state GC).
	fill := int(float64(logical) * 0.85)
	for i := 0; i < fill; i++ {
		if err := f.Write(int32(i)); err != nil {
			return CalibrationResult{}, err
		}
	}
	for i := 0; i < fill*3/10; i++ {
		if err := f.Write(int32(rng.Intn(fill))); err != nil {
			return CalibrationResult{}, err
		}
	}

	// Read workload: 70% sequential ranges, 30% random points — roughly the
	// paper's table-scan-plus-lookup mix.
	before := f.Stats()
	reads := fill
	i := 0
	for i < reads {
		if rng.Intn(10) < 7 {
			start := rng.Intn(fill)
			for j := 0; j < 64 && i < reads; j++ {
				if _, _, err := f.Read(int32((start + j) % fill)); err != nil {
					return CalibrationResult{}, err
				}
				i++
			}
		} else {
			if _, _, err := f.Read(int32(rng.Intn(fill))); err != nil {
				return CalibrationResult{}, err
			}
			i++
		}
	}
	after := f.Stats()
	misses := after.MapMisses - before.MapMisses
	hostReads := after.HostReads - before.HostReads
	res := CalibrationResult{Stats: after}
	if hostReads > 0 {
		res.OverheadPct = 100 * float64(misses) / float64(hostReads)
	}
	return res, nil
}
