package ftl

import (
	"testing"
	"testing/quick"
)

func smallGeo() Geometry {
	return Geometry{PageBytes: 4 << 10, PagesPerBlock: 32, Blocks: 64, OverprovisionPct: 10}
}

func TestNewValidatesGeometry(t *testing.T) {
	if _, err := New(Geometry{}, 1<<20); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
	if _, err := New(Geometry{PageBytes: 4096, PagesPerBlock: 8, Blocks: 2}, 1<<20); err == nil {
		t.Fatal("2 blocks is not enough for GC")
	}
}

func TestWriteReadMapping(t *testing.T) {
	f, err := New(smallGeo(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mapped, _, err := f.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if mapped {
		t.Fatal("unwritten page reported as mapped")
	}
	if err := f.Write(5); err != nil {
		t.Fatal(err)
	}
	mapped, _, err = f.Read(5)
	if err != nil || !mapped {
		t.Fatalf("written page not mapped: %v %v", mapped, err)
	}
	if _, _, err := f.Read(1 << 30); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := f.Write(1 << 30); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestOverwritesTriggerGC(t *testing.T) {
	f, err := New(smallGeo(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	logical := f.LogicalPages()
	// Fill sequentially, then update random pages: blocks end up with mixed
	// validity, so GC must relocate survivors (write amplification > 1).
	for i := 0; i < logical; i++ {
		if err := f.Write(int32(i)); err != nil {
			t.Fatalf("fill page %d: %v", i, err)
		}
	}
	r := int64(1)
	for i := 0; i < 2*logical; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		if err := f.Write(int32((uint64(r) >> 33) % uint64(logical))); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("no GC despite 3× write volume: %+v", st)
	}
	if st.Relocations == 0 {
		t.Fatal("random updates must force survivor relocation")
	}
	if wa := st.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("write amplification %.3f must exceed 1 under GC", wa)
	}
	// All pages still mapped after GC.
	for i := 0; i < logical; i += 97 {
		mapped, _, _ := f.Read(int32(i))
		if !mapped {
			t.Fatalf("page %d lost its mapping during GC", i)
		}
	}
}

func TestGreedyPicksEmptiestVictim(t *testing.T) {
	geo := smallGeo()
	f, err := New(geo, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential fill, then invalidate all pages of the second block by
	// rewriting exactly those logical pages; greedy GC should reclaim a
	// fully-invalid block without relocations.
	logical := f.LogicalPages()
	for i := 0; i < logical; i++ {
		f.Write(int32(i))
	}
	for i := geo.PagesPerBlock; i < 2*geo.PagesPerBlock; i++ {
		f.Write(int32(i))
	}
	// Keep writing until GC fires.
	before := f.Stats()
	i := 0
	for f.Stats().GCRuns == before.GCRuns {
		f.Write(int32(i % logical))
		i++
		if i > logical*4 {
			t.Fatal("GC never fired")
		}
	}
	st := f.Stats()
	perGC := float64(st.Relocations) / float64(st.GCRuns)
	if perGC > float64(geo.PagesPerBlock)/2 {
		t.Fatalf("greedy GC relocated %.1f pages per run — not picking empty victims", perGC)
	}
}

func TestMappingCacheMissesBounded(t *testing.T) {
	// A cache covering the whole mapping table never misses after warm-up.
	geo := smallGeo()
	f, _ := New(geo, 1<<30)
	logical := f.LogicalPages()
	for i := 0; i < logical; i++ {
		f.Write(int32(i))
	}
	warm := f.Stats().MapMisses
	for i := 0; i < logical; i++ {
		f.Read(int32(i))
	}
	if f.Stats().MapMisses != warm {
		t.Fatal("full cache still missed")
	}
	// A one-page cache thrashes on random access.
	tiny, _ := New(geo, 1)
	for i := 0; i < logical; i++ {
		tiny.Write(int32(i))
	}
	m0 := tiny.Stats().MapMisses
	stride := int(tiny.entriesPerMapPage())
	for i := 0; i < 10; i++ {
		tiny.Read(int32((i * stride) % logical))
	}
	if tiny.Stats().MapMisses-m0 < 5 {
		t.Fatal("tiny cache should thrash on strided access")
	}
}

func TestCalibrateBlockOverhead(t *testing.T) {
	res, err := CalibrateBlockOverhead(DefaultGeometry(), 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadPct <= 0 || res.OverheadPct >= 100 {
		t.Fatalf("overhead %.1f%% out of band", res.OverheadPct)
	}
	if res.Stats.GCRuns == 0 {
		t.Fatal("calibration never reached steady-state GC")
	}
	// The hardware model's 25% BLK tax must sit inside the simulated band
	// across cache sizes (1 MB is the paper's setup).
	big, err := CalibrateBlockOverhead(DefaultGeometry(), 8<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if big.OverheadPct >= res.OverheadPct {
		t.Fatalf("8 MB cache (%.1f%%) must beat 1 MB (%.1f%%)", big.OverheadPct, res.OverheadPct)
	}
}

func TestWriteAmpProperty(t *testing.T) {
	// Any update pattern keeps write amplification ≥ 1 and mappings intact.
	f := func(seed int64) bool {
		ftl, err := New(smallGeo(), 1<<20)
		if err != nil {
			return false
		}
		logical := ftl.LogicalPages()
		r := seed
		written := map[int32]bool{}
		for i := 0; i < 3000; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			lpn := int32((uint64(r) >> 33) % uint64(logical))
			if err := ftl.Write(lpn); err != nil {
				return false
			}
			written[lpn] = true
		}
		for lpn := range written {
			mapped, _, _ := ftl.Read(lpn)
			if !mapped {
				return false
			}
		}
		return ftl.Stats().WriteAmplification() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
