package lsm

import "bytes"

// View is a frozen, transactionally consistent read view of the tree: the C0
// contents and the SST lists captured at creation time. This is the
// update-aware NDP mechanism of nKV (paper §2.1): the shared state shipped
// with an NDP invocation pins exactly this view, so the device processes a
// consistent snapshot while the host keeps accepting writes.
//
// A view remains valid as long as the SSTs it references exist on flash;
// compactions triggered by further write traffic may retire them, so views
// are meant to live for the duration of one NDP invocation (as in nKV),
// not as long-lived readers.
type View struct {
	mem    []Entry // frozen C0 (sorted, newest version per key, tombstones kept)
	l1     []*SST
	levels [][]*SST
	tiered bool
}

// View captures the current state of the tree.
func (t *Tree) View() *View {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v := &View{
		l1:     append([]*SST(nil), t.l1...),
		tiered: t.cfg.Tiered,
	}
	for _, lvl := range t.levels {
		v.levels = append(v.levels, append([]*SST(nil), lvl...))
	}
	// MemContents acquires the lock itself; collect inline to avoid
	// re-entrancy.
	srcs := []mergeSource{&memSource{it: t.mem.Iter(nil)}}
	for _, m := range t.imm {
		srcs = append(srcs, &memSource{it: m.Iter(nil)})
	}
	for it := newMergeIter(srcs, Access{}, true); it.Valid(); it.Next() {
		e := it.Entry()
		v.mem = append(v.mem, Entry{
			Key:       append([]byte(nil), e.Key...),
			Value:     append([]byte(nil), e.Value...),
			Tombstone: e.Tombstone,
		})
	}
	return v
}

// frozenSource iterates the view's captured C0 entries.
type frozenSource struct {
	entries []Entry
	pos     int
}

func (s *frozenSource) valid() bool  { return s.pos < len(s.entries) }
func (s *frozenSource) entry() Entry { return s.entries[s.pos] }
func (s *frozenSource) next()        { s.pos++ }
func (s *frozenSource) err() error   { return nil }

func (s *frozenSource) seek(start []byte) {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(s.entries[mid].Key, start) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pos = lo
}

// Get retrieves the value for key as of the view's creation.
func (v *View) Get(key []byte, ac Access) ([]byte, bool, error) {
	fs := &frozenSource{entries: v.mem}
	fs.seek(key)
	if fs.valid() && bytes.Equal(fs.entry().Key, key) {
		return valueOf(fs.entry())
	}
	for _, s := range v.l1 {
		e, ok, err := s.Get(key, ac)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return valueOf(e)
		}
	}
	for _, lvl := range v.levels {
		e, ok, err := getFromLevel(lvl, key, ac, v.tiered)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return valueOf(e)
		}
	}
	return nil, false, nil
}

// Scan iterates [lo, hi) as of the view's creation.
func (v *View) Scan(lo, hi []byte, ac Access) *TreeIter {
	fs := &frozenSource{entries: v.mem}
	if lo != nil {
		fs.seek(lo)
	}
	srcs := []mergeSource{fs}
	for _, s := range v.l1 {
		if s.OverlapsRange(lo, hi) {
			srcs = append(srcs, &sstSource{it: s.Iter(lo, ac)})
		}
	}
	for _, lvl := range v.levels {
		for _, s := range lvl {
			if s.OverlapsRange(lo, hi) {
				srcs = append(srcs, &sstSource{it: s.Iter(lo, ac)})
			}
		}
	}
	return &TreeIter{inner: newMergeIter(srcs, ac, false), hi: hi}
}
