package lsm

import (
	"bytes"
	"fmt"
	"sync"

	"hybridndp/internal/flash"
)

// flashFileID aliases the flash file identifier for the manifest hook.
type flashFileID = flash.FileID

// Config tunes one LSM tree.
type Config struct {
	// MemTableBytes is the C0 flush threshold.
	MemTableBytes int64
	// MaxL1Files triggers compaction of C1 (which may hold overlapping key
	// ranges) into C2 once exceeded.
	MaxL1Files int
	// LevelRatio is the size ratio r = |C_{i+1}|/|C_i| of classic LSM trees
	// (leveled), or the run count per level that triggers a merge (tiered).
	LevelRatio int
	// BaseLevelBytes is the size limit of C2; level i+1 allows
	// BaseLevelBytes × LevelRatio^(i-2). Leveled strategy only.
	BaseLevelBytes int64
	// Tiered selects tiered compaction (paper §2.2: "depending on the
	// strategy (e.g., tiered or leveled)"): each level holds up to
	// LevelRatio overlapping runs; overflow merges the whole level into one
	// run on the next level. Reads check every run, writes move less data.
	Tiered bool
	// Durable enables the write-ahead log and the flash-rooted manifest, so
	// the tree survives a restart via Reopen.
	Durable bool
	// WALSyncBytes is the WAL group-commit threshold (≤0: 64 KiB).
	WALSyncBytes int64
	// OnManifest, when set, receives each newly written manifest file ID
	// instead of installing it as the flash root — the hook the nKV layer
	// uses to keep one root covering many column families.
	OnManifest func(id flashFileID) error
	// Seed is the base seed for memtable skiplist height RNGs; each rotation
	// derives a fresh per-memtable seed from it. 0 means lsm.DefaultSeed.
	Seed int64
}

// DefaultConfig mirrors a small RocksDB-ish setup, scaled for the simulator.
func DefaultConfig() Config {
	return Config{
		MemTableBytes:  4 << 20,
		MaxL1Files:     8,
		LevelRatio:     10,
		BaseLevelBytes: 64 << 20,
	}
}

// Tree is a multi-level LSM tree as organized in RocksDB/nKV (paper §2.2 and
// Fig. 4): C0 is a set of skiplist MemTables; C1 holds flushed SSTs with
// possibly overlapping key ranges (no merge on flush, for performance); C2..CK
// hold non-overlapping SSTs produced by compaction.
type Tree struct {
	mu         sync.RWMutex
	cfg        Config
	fl         *flash.Flash
	mem        *MemTable   // guarded by mu
	imm        []*MemTable // immutable memtables, newest first; guarded by mu
	l1         []*SST      // newest first, ranges may overlap; guarded by mu
	levels     [][]*SST    // levels[i] = C_{i+2}, sorted by min key, non-overlapping; guarded by mu
	wal        *WAL        // nil unless cfg.Durable
	manifestID flashFileID // guarded by mu
	memSeq     int64       // memtables created so far, for seed derivation; guarded by mu
}

// NewTree creates an empty tree over the given flash module.
func NewTree(fl *flash.Flash, cfg Config) *Tree {
	if cfg.MemTableBytes <= 0 {
		def := DefaultConfig()
		def.Tiered = cfg.Tiered
		def.Durable = cfg.Durable
		def.WALSyncBytes = cfg.WALSyncBytes
		def.OnManifest = cfg.OnManifest
		def.Seed = cfg.Seed
		cfg = def
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	t := &Tree{cfg: cfg, fl: fl}
	t.mem = t.newMemTableLocked()
	if cfg.Durable {
		t.wal = newWAL(fl, cfg.WALSyncBytes)
	}
	return t
}

// Put inserts or overwrites a key. Writes are maintenance traffic in this
// reproduction (the paper measures read-side query processing; write
// amplification was addressed earlier by NoFTL-KV) and are not charged.
func (t *Tree) Put(key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal != nil {
		if err := t.wal.Append(Entry{Key: key, Value: value}); err != nil {
			return err
		}
	}
	t.mem.Put(key, value)
	return t.maybeRotateLocked()
}

// Delete writes a tombstone for key.
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal != nil {
		if err := t.wal.Append(Entry{Key: key, Tombstone: true}); err != nil {
			return err
		}
	}
	t.mem.Delete(key)
	return t.maybeRotateLocked()
}

// newMemTableLocked derives the next memtable's RNG seed from the configured
// base seed and a rotation counter, so every memtable over the tree's lifetime
// gets a distinct but reproducible skiplist height sequence.
func (t *Tree) newMemTableLocked() *MemTable {
	t.memSeq++
	return NewMemTableSeeded(t.cfg.Seed + t.memSeq - 1)
}

func (t *Tree) maybeRotateLocked() error {
	if t.mem.ByteSize() < t.cfg.MemTableBytes {
		return nil
	}
	t.imm = append([]*MemTable{t.mem}, t.imm...)
	t.mem = t.newMemTableLocked()
	return t.flushLocked()
}

// Sync persists any pending WAL records without flushing memtables.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal == nil {
		return nil
	}
	if err := t.wal.Sync(); err != nil {
		return err
	}
	return t.persistManifestLocked()
}

// Flush forces all memtables (mutable and immutable) to C1 SSTs.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mem.Len() > 0 {
		t.imm = append([]*MemTable{t.mem}, t.imm...)
		t.mem = t.newMemTableLocked()
	}
	return t.flushLocked()
}

// flushLocked writes immutable memtables to C1 (no merging: overlapping key
// ranges are allowed on C1, exactly as the paper describes) and triggers
// compaction when C1 grows past its file limit.
func (t *Tree) flushLocked() error {
	for len(t.imm) > 0 {
		m := t.imm[len(t.imm)-1] // oldest first keeps newest-first order in l1
		t.imm = t.imm[:len(t.imm)-1]
		if m.Len() == 0 {
			continue
		}
		entries := make([]Entry, 0, m.Len())
		for it := m.Iter(nil); it.Valid(); it.Next() {
			entries = append(entries, it.Entry())
		}
		sst, err := BuildSST(t.fl, entries, Access{})
		if err != nil {
			return err
		}
		t.l1 = append([]*SST{sst}, t.l1...)
	}
	if len(t.l1) > t.cfg.MaxL1Files {
		if t.cfg.Tiered {
			if err := t.compactL1TieredLocked(); err != nil {
				return err
			}
		} else if err := t.compactL1Locked(); err != nil {
			return err
		}
	}
	var err error
	if t.cfg.Tiered {
		err = t.compactLowerTieredLocked()
	} else {
		err = t.compactLowerLocked()
	}
	if err != nil {
		return err
	}
	// Everything logged so far is durable in SSTs now: retire the WAL and
	// install the new manifest.
	if t.wal != nil {
		t.wal.Reset()
	}
	return t.persistManifestLocked()
}

// compactL1TieredLocked merges all of C1 into one sorted run pushed onto C2
// without touching C2's existing runs (tiered compaction: levels hold
// multiple overlapping runs, newest first).
func (t *Tree) compactL1TieredLocked() error {
	if len(t.l1) == 0 {
		return nil
	}
	srcs := make([]mergeSource, 0, len(t.l1))
	for _, s := range t.l1 {
		srcs = append(srcs, &sstSource{it: s.Iter(nil, Access{})})
	}
	merged, err := mergeAll(srcs, false)
	if err != nil {
		return err
	}
	old := t.l1
	t.l1 = nil
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	if len(merged) > 0 {
		// One SST per run: the level's run count is what triggers further
		// tiered merges, so a compaction must add exactly one run.
		run, err := BuildSST(t.fl, merged, Access{})
		if err != nil {
			return err
		}
		t.levels[0] = append([]*SST{run}, t.levels[0]...)
	}
	for _, s := range old {
		t.fl.DeleteFile(s.File())
	}
	return nil
}

// compactLowerTieredLocked merges a whole level into one run on the next
// level once it accumulates LevelRatio runs.
func (t *Tree) compactLowerTieredLocked() error {
	ratio := t.cfg.LevelRatio
	if ratio < 2 {
		ratio = 2
	}
	for i := 0; i < len(t.levels); i++ {
		if len(t.levels[i]) <= ratio {
			continue
		}
		srcs := make([]mergeSource, 0, len(t.levels[i]))
		for _, s := range t.levels[i] {
			srcs = append(srcs, &sstSource{it: s.Iter(nil, Access{})})
		}
		dropTombstones := i+2 >= len(t.levels)+1 && i+1 >= len(t.levels)
		merged, err := mergeAll(srcs, dropTombstones)
		if err != nil {
			return err
		}
		old := t.levels[i]
		t.levels[i] = nil
		if i+1 >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		if len(merged) > 0 {
			run, err := BuildSST(t.fl, merged, Access{})
			if err != nil {
				return err
			}
			t.levels[i+1] = append([]*SST{run}, t.levels[i+1]...)
		}
		for _, s := range old {
			t.fl.DeleteFile(s.File())
		}
	}
	return nil
}

// compactL1Locked merges all of C1 with the overlapping part of C2. Outdated
// versions are removed; tombstones survive unless C2 becomes the last level.
func (t *Tree) compactL1Locked() error {
	if len(t.l1) == 0 {
		return nil
	}
	var lo, hi []byte
	for _, s := range t.l1 {
		if lo == nil || bytes.Compare(s.MinKey(), lo) < 0 {
			lo = s.MinKey()
		}
		if hi == nil || bytes.Compare(s.MaxKey(), hi) > 0 {
			hi = s.MaxKey()
		}
	}
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	var overlap, keep []*SST
	for _, s := range t.levels[0] {
		if s.OverlapsRange(lo, hi) {
			overlap = append(overlap, s)
		} else {
			keep = append(keep, s)
		}
	}
	// Sources newest first: C1 files (already newest first), then C2 overlap.
	srcs := make([]mergeSource, 0, len(t.l1)+len(overlap))
	for _, s := range t.l1 {
		srcs = append(srcs, &sstSource{it: s.Iter(nil, Access{})})
	}
	for _, s := range overlap {
		srcs = append(srcs, &sstSource{it: s.Iter(nil, Access{})})
	}
	dropTombstones := len(t.levels) == 1 // C2 is the last level
	merged, err := mergeAll(srcs, dropTombstones)
	if err != nil {
		return err
	}
	old := append(append([]*SST(nil), t.l1...), overlap...)
	t.l1 = nil
	if len(merged) > 0 {
		outs, err := t.buildRuns(merged)
		if err != nil {
			return err
		}
		keep = append(keep, outs...)
	}
	sortByMinKey(keep)
	t.levels[0] = keep
	for _, s := range old {
		t.fl.DeleteFile(s.File())
	}
	return nil
}

// compactLowerLocked pushes overflowing levels downward (classic leveled
// compaction with ratio r).
func (t *Tree) compactLowerLocked() error {
	for i := 0; i < len(t.levels); i++ {
		limit := t.cfg.BaseLevelBytes
		for j := 0; j < i; j++ {
			limit *= int64(t.cfg.LevelRatio)
		}
		var size int64
		for _, s := range t.levels[i] {
			size += s.DataBytes()
		}
		if size <= limit || len(t.levels[i]) == 0 {
			continue
		}
		if i+1 >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		// Move the first (smallest-key) SST down, merging with overlap.
		victim := t.levels[i][0]
		t.levels[i] = t.levels[i][1:]
		var overlap, keep []*SST
		for _, s := range t.levels[i+1] {
			if s.OverlapsRange(victim.MinKey(), victim.MaxKey()) {
				overlap = append(overlap, s)
			} else {
				keep = append(keep, s)
			}
		}
		srcs := []mergeSource{&sstSource{it: victim.Iter(nil, Access{})}}
		for _, s := range overlap {
			srcs = append(srcs, &sstSource{it: s.Iter(nil, Access{})})
		}
		dropTombstones := i+2 == len(t.levels)
		merged, err := mergeAll(srcs, dropTombstones)
		if err != nil {
			return err
		}
		if len(merged) > 0 {
			outs, err := t.buildRuns(merged)
			if err != nil {
				return err
			}
			keep = append(keep, outs...)
		}
		sortByMinKey(keep)
		t.levels[i+1] = keep
		t.fl.DeleteFile(victim.File())
		for _, s := range overlap {
			t.fl.DeleteFile(s.File())
		}
	}
	return nil
}

// buildRuns splits merged entries into SSTs of roughly memtable size.
func (t *Tree) buildRuns(entries []Entry) ([]*SST, error) {
	var outs []*SST
	var run []Entry
	var runBytes int64
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		s, err := BuildSST(t.fl, run, Access{})
		if err != nil {
			return err
		}
		outs = append(outs, s)
		run = nil
		runBytes = 0
		return nil
	}
	for _, e := range entries {
		run = append(run, e)
		runBytes += int64(len(e.Key) + len(e.Value))
		if runBytes >= 2*t.cfg.MemTableBytes {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return outs, nil
}

func sortByMinKey(ssts []*SST) {
	for i := 1; i < len(ssts); i++ {
		for j := i; j > 0 && bytes.Compare(ssts[j].MinKey(), ssts[j-1].MinKey()) < 0; j-- {
			ssts[j], ssts[j-1] = ssts[j-1], ssts[j]
		}
	}
}

// mergeAll drains the sources (ordered newest first) into a deduplicated
// sorted entry list.
func mergeAll(srcs []mergeSource, dropTombstones bool) ([]Entry, error) {
	it := newMergeIter(srcs, Access{}, !dropTombstones)
	var out []Entry
	for it.Valid() {
		e := it.Entry()
		if !(dropTombstones && e.Tombstone) {
			out = append(out, Entry{
				Key:       append([]byte(nil), e.Key...),
				Value:     append([]byte(nil), e.Value...),
				Tombstone: e.Tombstone,
			})
		}
		it.Next()
	}
	return out, it.Err()
}

// Get retrieves the entry for key following the paper's lookup order:
// memtables, then C1 (every overlapping SST, newest first), then one SST per
// lower level.
func (t *Tree) Get(key []byte, ac Access) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e, ok := t.mem.Get(key); ok {
		return valueOf(e)
	}
	for _, m := range t.imm {
		if e, ok := m.Get(key); ok {
			return valueOf(e)
		}
	}
	for _, s := range t.l1 {
		e, ok, err := s.Get(key, ac)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return valueOf(e)
		}
	}
	for _, lvl := range t.levels {
		e, ok, err := getFromLevel(lvl, key, ac, t.cfg.Tiered)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return valueOf(e)
		}
	}
	return nil, false, nil
}

// getFromLevel resolves a key inside one level: leveled levels hold
// non-overlapping SSTs (binary search), tiered levels hold overlapping runs
// checked newest first.
func getFromLevel(lvl []*SST, key []byte, ac Access, tiered bool) (Entry, bool, error) {
	if tiered {
		for _, s := range lvl {
			e, ok, err := s.Get(key, ac)
			if err != nil || ok {
				return e, ok, err
			}
		}
		return Entry{}, false, nil
	}
	i := searchLevel(lvl, key)
	if i < 0 {
		return Entry{}, false, nil
	}
	return lvl[i].Get(key, ac)
}

func valueOf(e Entry) ([]byte, bool, error) {
	if e.Tombstone {
		return nil, false, nil
	}
	return e.Value, true, nil
}

// searchLevel finds the single SST in a non-overlapping level that could
// contain key, or -1.
func searchLevel(lvl []*SST, key []byte) int {
	lo, hi := 0, len(lvl)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := lvl[mid]
		switch {
		case bytes.Compare(key, s.MinKey()) < 0:
			hi = mid - 1
		case bytes.Compare(key, s.MaxKey()) > 0:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// Scan returns a merged iterator over [lo, hi) (nil bounds are unbounded).
// Fence pointers exclude SSTs entirely outside the range before any flash
// read happens, as in MyRocks/RocksDB.
func (t *Tree) Scan(lo, hi []byte, ac Access) *TreeIter {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var hiIncl []byte // OverlapsRange uses inclusive bounds; adjust below.
	if hi != nil {
		hiIncl = hi
	}
	srcs := []mergeSource{&memSource{it: t.mem.Iter(lo)}}
	for _, m := range t.imm {
		srcs = append(srcs, &memSource{it: m.Iter(lo)})
	}
	for _, s := range t.l1 {
		if s.OverlapsRange(lo, hiIncl) {
			srcs = append(srcs, &sstSource{it: s.Iter(lo, ac)})
		}
	}
	for _, lvl := range t.levels {
		for _, s := range lvl {
			if s.OverlapsRange(lo, hiIncl) {
				srcs = append(srcs, &sstSource{it: s.Iter(lo, ac)})
			}
		}
	}
	return &TreeIter{inner: newMergeIter(srcs, ac, false), hi: hi}
}

// TreeIter walks the merged view of the tree, hiding tombstones and stopping
// at the upper bound.
type TreeIter struct {
	inner *mergeIter
	hi    []byte
}

// Valid reports whether the iterator is positioned on a live entry.
func (it *TreeIter) Valid() bool {
	it.skipDead()
	if !it.inner.Valid() {
		return false
	}
	if it.hi != nil && bytes.Compare(it.inner.Entry().Key, it.hi) >= 0 {
		return false
	}
	return true
}

func (it *TreeIter) skipDead() {
	for it.inner.Valid() && it.inner.Entry().Tombstone {
		it.inner.Next()
	}
}

// Entry returns the current entry; only valid while Valid().
func (it *TreeIter) Entry() Entry { return it.inner.Entry() }

// Next advances to the next live entry.
func (it *TreeIter) Next() { it.inner.Next() }

// Err reports a read error encountered while iterating.
func (it *TreeIter) Err() error { return it.inner.Err() }

// MemContents returns the current C0 contents (mutable and immutable
// memtables, newest version per key, tombstones included). This is the
// shared-state payload nKV ships alongside NDP invocations so the device
// sees a transactionally consistent snapshot.
func (t *Tree) MemContents() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	srcs := []mergeSource{&memSource{it: t.mem.Iter(nil)}}
	for _, m := range t.imm {
		srcs = append(srcs, &memSource{it: m.Iter(nil)})
	}
	var out []Entry
	for it := newMergeIter(srcs, Access{}, true); it.Valid(); it.Next() {
		e := it.Entry()
		out = append(out, Entry{
			Key:       append([]byte(nil), e.Key...),
			Value:     append([]byte(nil), e.Value...),
			Tombstone: e.Tombstone,
		})
	}
	return out
}

// LevelInfo describes one level for statistics and NDP placement maps.
type LevelInfo struct {
	Level int // 0 = C0 (memtables), 1 = C1, ...
	SSTs  []SSTInfo
	// MemEntries counts in-memory entries (level 0 only).
	MemEntries int
}

// SSTInfo is the physical placement record of one SST: what the host sends
// along with an NDP invocation so the device can read the file directly.
type SSTInfo struct {
	File      flash.FileID
	MinKey    []byte
	MaxKey    []byte
	Count     int
	DataBytes int64
}

// Placement reports the physical organization of the tree (the
// address-mapping information that accompanies NDP invocations).
func (t *Tree) Placement() []LevelInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	mem := t.mem.Len()
	for _, m := range t.imm {
		mem += m.Len()
	}
	out := []LevelInfo{{Level: 0, MemEntries: mem}}
	appendLevel := func(level int, ssts []*SST) {
		li := LevelInfo{Level: level}
		for _, s := range ssts {
			li.SSTs = append(li.SSTs, SSTInfo{
				File: s.File(), MinKey: s.MinKey(), MaxKey: s.MaxKey(),
				Count: s.Count(), DataBytes: s.DataBytes(),
			})
		}
		out = append(out, li)
	}
	appendLevel(1, t.l1)
	for i, lvl := range t.levels {
		appendLevel(i+2, lvl)
	}
	return out
}

// Stats summarizes the tree for the optimizer's statistics collection.
type Stats struct {
	Entries   int
	DataBytes int64
	Levels    int
	SSTs      int
}

// Stats reports aggregate tree statistics. Entries counts SST entries plus
// memtable entries and over-counts keys duplicated across levels, matching
// the imprecision of real system statistics.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var st Stats
	st.Entries = t.mem.Len()
	for _, m := range t.imm {
		st.Entries += m.Len()
	}
	count := func(ssts []*SST) {
		for _, s := range ssts {
			st.Entries += s.Count()
			st.DataBytes += s.DataBytes()
			st.SSTs++
		}
	}
	count(t.l1)
	st.Levels = 1
	if len(t.l1) > 0 {
		st.Levels = 2
	}
	for _, lvl := range t.levels {
		count(lvl)
		if len(lvl) > 0 {
			st.Levels++
		}
	}
	return st
}

// SanityCheck verifies structural invariants: C1 may overlap, lower levels
// must not under leveled compaction; every leveled level is sorted by min
// key. Used by property tests.
func (t *Tree) SanityCheck() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.cfg.Tiered {
		return nil // tiered levels are allowed to overlap by design
	}
	for li, lvl := range t.levels {
		for i := 1; i < len(lvl); i++ {
			if bytes.Compare(lvl[i-1].MaxKey(), lvl[i].MinKey()) >= 0 {
				return fmt.Errorf("lsm: level C%d SSTs %d,%d overlap (%q ≥ %q)",
					li+2, i-1, i, lvl[i-1].MaxKey(), lvl[i].MinKey())
			}
		}
	}
	return nil
}
