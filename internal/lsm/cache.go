package lsm

import (
	"container/list"
	"sync"

	"hybridndp/internal/flash"
)

// BlockCache is an LRU cache of decoded data blocks, the equivalent of the
// RocksDB block cache on the host and of the on-device data-block buffer
// inside the NDP engine's temporary-storage reservation. A cache hit avoids
// the flash read entirely; the reading engine charges only the in-memory
// copy. Each engine owns its cache (host: large, bounded by hw_MSH; device:
// small, part of the 520 MB temporary storage), and executions start cold so
// strategy comparisons are order-independent.
type BlockCache struct {
	mu   sync.Mutex
	cap  int64                      // immutable after NewBlockCache
	used int64                      // guarded by mu
	lru  *list.List                 // guarded by mu
	m    map[blockKey]*list.Element // guarded by mu

	hits   int64 // guarded by mu
	misses int64 // guarded by mu
}

type blockKey struct {
	file  flash.FileID
	block int
}

type cacheEntry struct {
	key     blockKey
	entries []Entry
	bytes   int64
}

// NewBlockCache creates a cache bounded to capacity bytes (≤0 disables it).
func NewBlockCache(capacity int64) *BlockCache {
	return &BlockCache{cap: capacity, lru: list.New(), m: make(map[blockKey]*list.Element)}
}

// Get returns the cached block, if present.
func (c *BlockCache) Get(file flash.FileID, block int) ([]Entry, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[blockKey{file, block}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).entries, true
}

// Put inserts a decoded block, evicting LRU entries as needed.
func (c *BlockCache) Put(file flash.FileID, block int, entries []Entry, rawBytes int64) {
	if c == nil || c.cap <= 0 || rawBytes > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := blockKey{file, block}
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.used+rawBytes > c.cap && c.lru.Len() > 0 {
		back := c.lru.Back()
		ce := back.Value.(*cacheEntry)
		c.used -= ce.bytes
		delete(c.m, ce.key)
		c.lru.Remove(back)
	}
	el := c.lru.PushFront(&cacheEntry{key: k, entries: entries, bytes: rawBytes})
	c.m[k] = el
	c.used += rawBytes
}

// Stats reports hit/miss counters and occupancy.
func (c *BlockCache) Stats() (hits, misses, used int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
