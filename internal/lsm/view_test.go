package lsm

import (
	"bytes"
	"testing"
)

func TestViewIsolatedFromLaterWrites(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i))
	}
	v := tr.View()

	// Concurrent modifications after the snapshot (update-aware NDP: the
	// device must not see them).
	tr.Put(key(100), []byte("mutated"))
	tr.Put(key(9999), []byte("new"))
	tr.Delete(key(200))

	got, ok, err := v.Get(key(100), Access{})
	if err != nil || !ok || !bytes.Equal(got, val(100)) {
		t.Fatalf("view saw the mutation: %q %v %v", got, ok, err)
	}
	if _, ok, _ := v.Get(key(9999), Access{}); ok {
		t.Fatal("view saw a post-snapshot insert")
	}
	if got, ok, _ := v.Get(key(200), Access{}); !ok || !bytes.Equal(got, val(200)) {
		t.Fatal("view saw a post-snapshot delete")
	}
	// The live tree sees everything.
	if got, _, _ := tr.Get(key(100), Access{}); !bytes.Equal(got, []byte("mutated")) {
		t.Fatal("live tree lost the mutation")
	}

	// View scans match the snapshot state.
	n := 0
	for it := v.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
		e := it.Entry()
		if bytes.Equal(e.Key, key(9999)) {
			t.Fatal("view scan surfaced a post-snapshot key")
		}
		if bytes.Equal(e.Key, key(100)) && !bytes.Equal(e.Value, val(100)) {
			t.Fatal("view scan surfaced a post-snapshot value")
		}
		n++
	}
	if n != 500 {
		t.Fatalf("view scan found %d keys, want 500", n)
	}
}

func TestViewSeesUnflushedState(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 100; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	// Hot, un-flushed modifications: the shared-state part of the snapshot.
	tr.Put(key(50), []byte("hot"))
	tr.Delete(key(60))
	v := tr.View()

	if got, ok, _ := v.Get(key(50), Access{}); !ok || !bytes.Equal(got, []byte("hot")) {
		t.Fatalf("view missed the un-flushed update: %q %v", got, ok)
	}
	if _, ok, _ := v.Get(key(60), Access{}); ok {
		t.Fatal("view missed the un-flushed tombstone")
	}
	n := 0
	for it := v.Scan(key(40), key(70), Access{}); it.Valid(); it.Next() {
		n++
	}
	if n != 29 { // 40..69 inclusive range start, minus deleted 60
		t.Fatalf("ranged view scan found %d keys, want 29", n)
	}
}

func TestViewScanBoundsAndOrder(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), val(i))
	}
	v := tr.View()
	var prev []byte
	n := 0
	for it := v.Scan(key(123), key(456), Access{}); it.Valid(); it.Next() {
		k := it.Entry().Key
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("view scan out of order")
		}
		prev = append(prev[:0], k...)
		n++
	}
	if n != 456-123 {
		t.Fatalf("view scan found %d keys", n)
	}
}
