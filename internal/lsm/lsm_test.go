package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/vclock"
)

func testFlash() *flash.Flash { return flash.New(hw.Cosmos(), 0) }

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestMemTableBasic(t *testing.T) {
	m := NewMemTable()
	for i := 0; i < 1000; i++ {
		m.Put(key(i), val(i))
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", m.Len())
	}
	for i := 0; i < 1000; i++ {
		e, ok := m.Get(key(i))
		if !ok || !bytes.Equal(e.Value, val(i)) {
			t.Fatalf("Get(%d) = %q,%v", i, e.Value, ok)
		}
	}
	if _, ok := m.Get([]byte("missing")); ok {
		t.Fatal("Get(missing) should not find an entry")
	}
}

func TestMemTableOverwriteAndDelete(t *testing.T) {
	m := NewMemTable()
	m.Put([]byte("a"), []byte("1"))
	m.Put([]byte("a"), []byte("2"))
	if m.Len() != 1 {
		t.Fatalf("overwrite should not grow table: Len = %d", m.Len())
	}
	e, ok := m.Get([]byte("a"))
	if !ok || string(e.Value) != "2" {
		t.Fatalf("Get(a) = %q,%v, want 2,true", e.Value, ok)
	}
	m.Delete([]byte("a"))
	e, ok = m.Get([]byte("a"))
	if !ok || !e.Tombstone {
		t.Fatalf("delete should leave a tombstone, got %+v %v", e, ok)
	}
}

func TestMemTableIterOrder(t *testing.T) {
	m := NewMemTable()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		m.Put(key(i), val(i))
	}
	i := 0
	for it := m.Iter(nil); it.Valid(); it.Next() {
		if !bytes.Equal(it.Entry().Key, key(i)) {
			t.Fatalf("iter position %d = %q, want %q", i, it.Entry().Key, key(i))
		}
		i++
	}
	if i != 500 {
		t.Fatalf("iterated %d entries, want 500", i)
	}
	// Start mid-range.
	it := m.Iter(key(250))
	if !it.Valid() || !bytes.Equal(it.Entry().Key, key(250)) {
		t.Fatalf("Iter(key250) starts at %q", it.Entry().Key)
	}
}

func TestSSTRoundTrip(t *testing.T) {
	fl := testFlash()
	var entries []Entry
	for i := 0; i < 5000; i++ {
		entries = append(entries, Entry{Key: key(i), Value: val(i)})
	}
	s, err := BuildSST(fl, entries, Access{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 5000 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !bytes.Equal(s.MinKey(), key(0)) || !bytes.Equal(s.MaxKey(), key(4999)) {
		t.Fatalf("fence pointers wrong: %q..%q", s.MinKey(), s.MaxKey())
	}
	for _, i := range []int{0, 1, 777, 2500, 4999} {
		e, ok, err := s.Get(key(i), Access{})
		if err != nil || !ok || !bytes.Equal(e.Value, val(i)) {
			t.Fatalf("Get(%d) = %q,%v,%v", i, e.Value, ok, err)
		}
	}
	if _, ok, _ := s.Get([]byte("zzz"), Access{}); ok {
		t.Fatal("Get out of range should miss")
	}
	// Full iteration.
	n := 0
	for it := s.Iter(nil, Access{}); it.Valid(); it.Next() {
		if !bytes.Equal(it.Entry().Key, key(n)) {
			t.Fatalf("iter position %d = %q", n, it.Entry().Key)
		}
		n++
	}
	if n != 5000 {
		t.Fatalf("iterated %d entries", n)
	}
	// Seek iteration.
	it := s.Iter(key(4321), Access{})
	if !it.Valid() || !bytes.Equal(it.Entry().Key, key(4321)) {
		t.Fatal("seek to 4321 failed")
	}
}

func TestSSTChargesFlashReads(t *testing.T) {
	fl := testFlash()
	var entries []Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, Entry{Key: key(i), Value: val(i)})
	}
	s, err := BuildSST(fl, entries, Access{})
	if err != nil {
		t.Fatal(err)
	}
	tl := vclock.NewTimeline("host")
	ac := Access{TL: tl, R: hw.HostRates(hw.Cosmos())}
	if _, ok, _ := s.Get(key(1000), ac); !ok {
		t.Fatal("lookup missed")
	}
	if tl.Booked(hw.CatFlashLoad) <= 0 {
		t.Fatal("charged lookup booked no flash time")
	}
	if tl.Booked(hw.CatSeekIndex) <= 0 {
		t.Fatal("charged lookup booked no index seek time")
	}
}

func TestSSTDeviceCheaperFlashThanHost(t *testing.T) {
	fl := testFlash()
	var entries []Entry
	for i := 0; i < 20000; i++ {
		entries = append(entries, Entry{Key: key(i), Value: val(i)})
	}
	s, err := BuildSST(fl, entries, Access{})
	if err != nil {
		t.Fatal(err)
	}
	m := hw.Cosmos()
	host := vclock.NewTimeline("host")
	dev := vclock.NewTimeline("device")
	for it := s.Iter(nil, Access{TL: host, R: hw.HostRates(m)}); it.Valid(); it.Next() {
	}
	for it := s.Iter(nil, Access{TL: dev, R: hw.DeviceRates(m)}); it.Valid(); it.Next() {
	}
	if dev.Booked(hw.CatFlashLoad) >= host.Booked(hw.CatFlashLoad) {
		t.Fatalf("device flash streaming (%v) should be cheaper than host (%v)",
			dev.Booked(hw.CatFlashLoad), host.Booked(hw.CatFlashLoad))
	}
}

func TestBuildSSTRejectsUnsorted(t *testing.T) {
	fl := testFlash()
	_, err := BuildSST(fl, []Entry{
		{Key: []byte("b"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
	}, Access{})
	if err == nil {
		t.Fatal("BuildSST should reject unsorted input")
	}
	if _, err := BuildSST(fl, nil, Access{}); err == nil {
		t.Fatal("BuildSST should reject empty input")
	}
}

func smallTree(fl *flash.Flash) *Tree {
	return NewTree(fl, Config{
		MemTableBytes:  8 << 10,
		MaxL1Files:     4,
		LevelRatio:     4,
		BaseLevelBytes: 64 << 10,
	})
}

func TestTreeGetAcrossLevels(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.SSTs == 0 || st.Levels < 2 {
		t.Fatalf("expected multi-level tree, got %+v", st)
	}
	for _, i := range []int{0, 42, 999, 2500, n - 1} {
		v, ok, err := tr.Get(key(i), Access{})
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
	if _, ok, _ := tr.Get([]byte("nope"), Access{}); ok {
		t.Fatal("missing key found")
	}
	if err := tr.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeUpdateShadowsOldVersions(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 3000; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	// Update a subset; new versions land above the old ones.
	for i := 0; i < 3000; i += 7 {
		tr.Put(key(i), []byte("updated"))
	}
	for i := 0; i < 3000; i++ {
		v, ok, err := tr.Get(key(i), Access{})
		if err != nil || !ok {
			t.Fatalf("Get(%d): %v %v", i, ok, err)
		}
		want := val(i)
		if i%7 == 0 {
			want = []byte("updated")
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
}

func TestTreeDeleteMasksLowerLevels(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 2000; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	for i := 0; i < 2000; i += 3 {
		tr.Delete(key(i))
	}
	for i := 0; i < 2000; i++ {
		_, ok, _ := tr.Get(key(i), Access{})
		if i%3 == 0 && ok {
			t.Fatalf("deleted key %d still visible", i)
		}
		if i%3 != 0 && !ok {
			t.Fatalf("live key %d missing", i)
		}
	}
	// Scans must hide tombstones too.
	n := 0
	for it := tr.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
		if it.Entry().Tombstone {
			t.Fatal("scan surfaced a tombstone")
		}
		n++
	}
	want := 2000 - (2000+2)/3
	if n != want {
		t.Fatalf("scan found %d live keys, want %d", n, want)
	}
}

func TestTreeScanRangeAndOrder(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	perm := rand.New(rand.NewSource(7)).Perm(4000)
	for _, i := range perm {
		tr.Put(key(i), val(i))
	}
	lo, hi := key(1234), key(2345)
	var prev []byte
	n := 0
	for it := tr.Scan(lo, hi, Access{}); it.Valid(); it.Next() {
		k := it.Entry().Key
		if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
			t.Fatalf("key %q outside [%q,%q)", k, lo, hi)
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		n++
	}
	if n != 2345-1234 {
		t.Fatalf("scan found %d keys, want %d", n, 2345-1234)
	}
}

func TestTreeScanSeesMemtableOverSST(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 100; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	tr.Put(key(50), []byte("fresh")) // stays in C0
	found := false
	for it := tr.Scan(key(50), key(51), Access{}); it.Valid(); it.Next() {
		found = true
		if string(it.Entry().Value) != "fresh" {
			t.Fatalf("scan returned stale value %q", it.Entry().Value)
		}
	}
	if !found {
		t.Fatal("scan missed key 50")
	}
}

func TestTreePlacement(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 4000; i++ {
		tr.Put(key(i), val(i))
	}
	pl := tr.Placement()
	if len(pl) < 2 {
		t.Fatalf("placement has %d levels", len(pl))
	}
	if pl[0].Level != 0 {
		t.Fatal("placement must start at C0")
	}
	total := pl[0].MemEntries
	for _, li := range pl[1:] {
		for _, s := range li.SSTs {
			if s.Count <= 0 || s.DataBytes <= 0 {
				t.Fatalf("placement SST with empty stats: %+v", s)
			}
			total += s.Count
		}
	}
	if total < 4000 { // duplicates across levels may exceed, never undershoot
		t.Fatalf("placement accounts for %d entries, want ≥ 4000", total)
	}
}

func TestBloomProperties(t *testing.T) {
	// No false negatives, bounded false positives.
	f := func(keys [][]byte) bool {
		if len(keys) == 0 {
			return true
		}
		b := NewBloom(len(keys))
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	b := NewBloom(10000)
	for i := 0; i < 10000; i++ {
		b.Add(key(i))
	}
	fp := 0
	for i := 10000; i < 20000; i++ {
		if b.MayContain(key(i)) {
			fp++
		}
	}
	if fp > 500 { // 5% — generous bound for a 10-bit/key filter
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
	rt := UnmarshalBloom(b.Marshal())
	for i := 0; i < 10000; i += 97 {
		if !rt.MayContain(key(i)) {
			t.Fatal("marshalled filter lost a key")
		}
	}
}

func TestTreePropertyRandomOps(t *testing.T) {
	// Model-based test: tree behaves like a map under random put/delete.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := testFlash()
		tr := smallTree(fl)
		model := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("k%04d", rng.Intn(300))
			if rng.Intn(4) == 0 {
				tr.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", op)
				tr.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		for k, v := range model {
			got, ok, err := tr.Get([]byte(k), Access{})
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		n := 0
		for it := tr.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
			if _, ok := model[string(it.Entry().Key)]; !ok {
				return false
			}
			n++
		}
		return n == len(model) && tr.SanityCheck() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIterChargesComparisons(t *testing.T) {
	fl := testFlash()
	tr := smallTree(fl)
	for i := 0; i < 3000; i++ {
		tr.Put(key(i), val(i))
	}
	tl := vclock.NewTimeline("host")
	ac := Access{TL: tl, R: hw.HostRates(hw.Cosmos())}
	for it := tr.Scan(nil, nil, ac); it.Valid(); it.Next() {
	}
	if tl.Booked(hw.CatCompareKeys) <= 0 {
		t.Fatal("merged scan booked no internal-key comparison time")
	}
}
