package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridndp/internal/flash"
)

func tieredTree(fl *flash.Flash) *Tree {
	return NewTree(fl, Config{
		MemTableBytes: 8 << 10,
		MaxL1Files:    4,
		LevelRatio:    3,
		Tiered:        true,
	})
}

func TestTieredGetAcrossRuns(t *testing.T) {
	fl := testFlash()
	tr := tieredTree(fl)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.SSTs == 0 {
		t.Fatalf("expected SSTs, got %+v", st)
	}
	for _, i := range []int{0, 42, 999, 2500, n - 1} {
		v, ok, err := tr.Get(key(i), Access{})
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
	if _, ok, _ := tr.Get([]byte("nope"), Access{}); ok {
		t.Fatal("missing key found")
	}
}

func TestTieredNewestVersionWins(t *testing.T) {
	fl := testFlash()
	tr := tieredTree(fl)
	// Multiple full rewrites leave the same keys in several runs; the
	// newest version must win on both Get and Scan.
	for round := 0; round < 4; round++ {
		for i := 0; i < 1500; i++ {
			tr.Put(key(i), []byte(fmt.Sprintf("r%d-%d", round, i)))
		}
		tr.Flush()
	}
	for _, i := range []int{0, 700, 1499} {
		v, ok, _ := tr.Get(key(i), Access{})
		want := fmt.Sprintf("r3-%d", i)
		if !ok || string(v) != want {
			t.Fatalf("Get(%d) = %q, want %q", i, v, want)
		}
	}
	n := 0
	for it := tr.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
		if !bytes.HasPrefix(it.Entry().Value, []byte("r3-")) {
			t.Fatalf("scan surfaced stale version %q for %q", it.Entry().Value, it.Entry().Key)
		}
		n++
	}
	if n != 1500 {
		t.Fatalf("scan found %d keys", n)
	}
}

func TestTieredDeletes(t *testing.T) {
	fl := testFlash()
	tr := tieredTree(fl)
	for i := 0; i < 2000; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	for i := 0; i < 2000; i += 3 {
		tr.Delete(key(i))
	}
	tr.Flush()
	for i := 0; i < 2000; i++ {
		_, ok, _ := tr.Get(key(i), Access{})
		if (i%3 == 0) == ok {
			t.Fatalf("key %d: visible=%v", i, ok)
		}
	}
}

func TestTieredMovesLessDataThanLeveled(t *testing.T) {
	// Tiered compaction's selling point: lower write amplification. Compare
	// total flash bytes written for an identical update-heavy workload.
	load := func(tiered bool) int64 {
		fl := testFlash()
		cfg := Config{MemTableBytes: 8 << 10, MaxL1Files: 4, LevelRatio: 3,
			BaseLevelBytes: 32 << 10, Tiered: tiered}
		tr := NewTree(fl, cfg)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 20000; i++ {
			tr.Put(key(rng.Intn(3000)), val(i))
		}
		tr.Flush()
		return fl.Stats().BytesWritten
	}
	leveled := load(false)
	tiered := load(true)
	if tiered >= leveled {
		t.Fatalf("tiered wrote %d B, leveled %d B — tiered must move less data", tiered, leveled)
	}
}

func TestTieredViewConsistency(t *testing.T) {
	fl := testFlash()
	tr := tieredTree(fl)
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), val(i))
	}
	v := tr.View()
	tr.Put(key(500), []byte("after"))
	got, ok, _ := v.Get(key(500), Access{})
	if !ok || !bytes.Equal(got, val(500)) {
		t.Fatalf("tiered view leaked a later write: %q %v", got, ok)
	}
}

func TestTieredPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := testFlash()
		tr := tieredTree(fl)
		model := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("k%04d", rng.Intn(300))
			if rng.Intn(4) == 0 {
				tr.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", op)
				tr.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		for k, v := range model {
			got, ok, err := tr.Get([]byte(k), Access{})
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		n := 0
		for it := tr.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
			if model[string(it.Entry().Key)] != string(it.Entry().Value) {
				return false
			}
			n++
		}
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
