package lsm

import (
	"fmt"
	"testing"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
)

func loadedTree(b *testing.B, n int, tiered bool) *Tree {
	b.Helper()
	fl := flash.New(hw.Cosmos(), 0)
	cfg := DefaultConfig()
	cfg.MemTableBytes = 64 << 10
	cfg.Tiered = tiered
	tr := NewTree(fl, cfg)
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkMemTablePut(b *testing.B) {
	m := NewMemTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(key(i), val(i))
	}
}

func BenchmarkTreePut(b *testing.B) {
	fl := flash.New(hw.Cosmos(), 0)
	cfg := DefaultConfig()
	cfg.MemTableBytes = 256 << 10
	tr := NewTree(fl, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeGet(b *testing.B) {
	for _, tiered := range []bool{false, true} {
		b.Run(fmt.Sprintf("tiered=%v", tiered), func(b *testing.B) {
			tr := loadedTree(b, 50_000, tiered)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := tr.Get(key(i%50_000), Access{}); err != nil || !ok {
					b.Fatalf("Get: %v %v", ok, err)
				}
			}
		})
	}
}

func BenchmarkTreeScan(b *testing.B) {
	tr := loadedTree(b, 50_000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for it := tr.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
			n++
		}
		if n != 50_000 {
			b.Fatalf("scan found %d", n)
		}
	}
}

func BenchmarkTreeScanWithCache(b *testing.B) {
	tr := loadedTree(b, 50_000, false)
	cache := NewBlockCache(64 << 20)
	ac := Access{Cache: cache}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for it := tr.Scan(nil, nil, ac); it.Valid(); it.Next() {
		}
	}
}

func BenchmarkBloomMayContain(b *testing.B) {
	f := NewBloom(100_000)
	for i := 0; i < 100_000; i++ {
		f.Add(key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key(i % 200_000))
	}
}
