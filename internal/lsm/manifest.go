package lsm

import (
	"encoding/binary"
	"fmt"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
)

// manifest is the tree's durable root: the SST file IDs of every level plus
// the live WAL segments. It is rewritten after every flush/compaction and
// installed through the flash root pointer, so Reopen can rebuild the exact
// tree after a restart.
type manifest struct {
	l1     []flash.FileID
	levels [][]flash.FileID
	wal    []flash.FileID
	tiered bool
}

const manifestMagic = 0x6e4b564d // "nKVM"

func (m *manifest) encode() []byte {
	var buf []byte
	put32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	put64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	putIDs := func(ids []flash.FileID) {
		put32(uint32(len(ids)))
		for _, id := range ids {
			put64(uint64(id))
		}
	}
	put32(manifestMagic)
	if m.tiered {
		put32(1)
	} else {
		put32(0)
	}
	putIDs(m.l1)
	put32(uint32(len(m.levels)))
	for _, lvl := range m.levels {
		putIDs(lvl)
	}
	putIDs(m.wal)
	return buf
}

func decodeManifest(raw []byte) (*manifest, error) {
	m := &manifest{}
	get32 := func() (uint32, error) {
		if len(raw) < 4 {
			return 0, fmt.Errorf("lsm: truncated manifest")
		}
		v := binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		return v, nil
	}
	getIDs := func() ([]flash.FileID, error) {
		n, err := get32()
		if err != nil {
			return nil, err
		}
		if uint64(len(raw)) < uint64(n)*8 {
			return nil, fmt.Errorf("lsm: truncated manifest id list")
		}
		ids := make([]flash.FileID, n)
		for i := range ids {
			ids[i] = flash.FileID(binary.LittleEndian.Uint64(raw))
			raw = raw[8:]
		}
		return ids, nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != manifestMagic {
		return nil, fmt.Errorf("lsm: bad manifest magic %#x", magic)
	}
	tiered, err := get32()
	if err != nil {
		return nil, err
	}
	m.tiered = tiered == 1
	if m.l1, err = getIDs(); err != nil {
		return nil, err
	}
	nLevels, err := get32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nLevels; i++ {
		lvl, err := getIDs()
		if err != nil {
			return nil, err
		}
		m.levels = append(m.levels, lvl)
	}
	if m.wal, err = getIDs(); err != nil {
		return nil, err
	}
	return m, nil
}

// persistManifestLocked writes the current structure and installs it — as the
// flash root in single-tree mode, or through the OnManifest callback when a
// higher layer (the nKV multi-CF manifest) owns the root. The previous
// manifest file is retired afterwards (write-new-then-switch, so a crash
// between the two steps keeps a valid root).
func (t *Tree) persistManifestLocked() error {
	if !t.cfg.Durable {
		return nil
	}
	m := &manifest{tiered: t.cfg.Tiered}
	for _, s := range t.l1 {
		m.l1 = append(m.l1, s.File())
	}
	for _, lvl := range t.levels {
		var ids []flash.FileID
		for _, s := range lvl {
			ids = append(ids, s.File())
		}
		m.levels = append(m.levels, ids)
	}
	if t.wal != nil {
		m.wal = t.wal.Segments()
	}
	id, err := t.fl.WriteFile(m.encode(), nil, hw.Rates{})
	if err != nil {
		return err
	}
	if t.cfg.OnManifest != nil {
		old := t.manifestID
		t.manifestID = id
		if err := t.cfg.OnManifest(id); err != nil {
			return err
		}
		if old != 0 {
			t.fl.DeleteFile(old)
		}
		return nil
	}
	old := t.fl.Root()
	t.fl.SetRoot(id)
	if old != 0 {
		t.fl.DeleteFile(old)
	}
	return nil
}

// Reopen rebuilds a tree from the flash root manifest: SSTs are reopened per
// level and the WAL segments are replayed into a fresh memtable, restoring
// the pre-restart state (paper §2.2's RocksDB recovery semantics). The
// config must enable Durable.
func Reopen(fl *flash.Flash, cfg Config) (*Tree, error) {
	root := fl.Root()
	if root == 0 {
		return nil, fmt.Errorf("lsm: no manifest root on this flash")
	}
	return ReopenFromManifest(fl, cfg, root)
}

// ReopenFromManifest rebuilds a tree from an explicit manifest file — the
// entry point used by the nKV layer, which keeps one manifest per column
// family under its own root.
func ReopenFromManifest(fl *flash.Flash, cfg Config, root flash.FileID) (*Tree, error) {
	if !cfg.Durable {
		return nil, fmt.Errorf("lsm: Reopen requires Config.Durable")
	}
	raw, err := fl.ReadFile(root, nil, hw.Rates{})
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	cfg.Tiered = m.tiered
	t := NewTree(fl, cfg)
	t.manifestID = root
	for _, id := range m.l1 {
		s, err := OpenSST(fl, id)
		if err != nil {
			return nil, fmt.Errorf("lsm: reopening C1 SST %d: %v", id, err)
		}
		t.l1 = append(t.l1, s)
	}
	for _, lvl := range m.levels {
		var ssts []*SST
		for _, id := range lvl {
			s, err := OpenSST(fl, id)
			if err != nil {
				return nil, fmt.Errorf("lsm: reopening SST %d: %v", id, err)
			}
			ssts = append(ssts, s)
		}
		t.levels = append(t.levels, ssts)
	}
	// Replay the WAL in append order: later records overwrite earlier ones
	// in the fresh memtable, restoring the newest versions.
	for _, seg := range m.wal {
		entries, err := replaySegment(fl, seg)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Tombstone {
				t.mem.Delete(e.Key)
			} else {
				t.mem.Put(e.Key, e.Value)
			}
		}
		// The recovered segments stay live until the next flush.
		t.wal.segments = append(t.wal.segments, seg)
	}
	return t, nil
}
