package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
)

// WAL is the tree's write-ahead log: Put/Delete records are appended to an
// in-memory pending buffer and persisted to flash segments (group commit),
// so the C0 state survives a restart. Once a flush makes all logged data
// durable in SSTs, the covered segments are dropped.
type WAL struct {
	fl        *flash.Flash
	pending   bytes.Buffer
	segments  []flash.FileID
	syncBytes int64
}

// newWAL creates a log with the given group-commit threshold (≤0 uses 64 KiB).
func newWAL(fl *flash.Flash, syncBytes int64) *WAL {
	if syncBytes <= 0 {
		syncBytes = 64 << 10
	}
	return &WAL{fl: fl, syncBytes: syncBytes}
}

// Append logs one operation, syncing when the pending buffer fills.
func (w *WAL) Append(e Entry) error {
	var scratch [binary.MaxVarintLen64]byte
	flags := byte(0)
	if e.Tombstone {
		flags = 1
	}
	w.pending.WriteByte(flags)
	n := binary.PutUvarint(scratch[:], uint64(len(e.Key)))
	w.pending.Write(scratch[:n])
	n = binary.PutUvarint(scratch[:], uint64(len(e.Value)))
	w.pending.Write(scratch[:n])
	w.pending.Write(e.Key)
	w.pending.Write(e.Value)
	if int64(w.pending.Len()) >= w.syncBytes {
		return w.Sync()
	}
	return nil
}

// Sync persists the pending buffer as a new segment.
func (w *WAL) Sync() error {
	if w.pending.Len() == 0 {
		return nil
	}
	id, err := w.fl.WriteFile(w.pending.Bytes(), nil, hw.Rates{})
	if err != nil {
		return err
	}
	w.segments = append(w.segments, id)
	w.pending.Reset()
	return nil
}

// Reset drops every segment — called once a flush made the data durable.
func (w *WAL) Reset() {
	for _, id := range w.segments {
		w.fl.DeleteFile(id)
	}
	w.segments = nil
	w.pending.Reset()
}

// Segments lists the persisted segment IDs in append order.
func (w *WAL) Segments() []flash.FileID {
	return append([]flash.FileID(nil), w.segments...)
}

// replaySegment decodes one WAL segment into entries.
func replaySegment(fl *flash.Flash, id flash.FileID) ([]Entry, error) {
	raw, err := fl.ReadFile(id, nil, hw.Rates{})
	if err != nil {
		return nil, err
	}
	var out []Entry
	for len(raw) > 0 {
		flags := raw[0]
		raw = raw[1:]
		klen, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("lsm: corrupt WAL segment %d (key length)", id)
		}
		raw = raw[n:]
		vlen, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("lsm: corrupt WAL segment %d (value length)", id)
		}
		raw = raw[n:]
		if uint64(len(raw)) < klen+vlen {
			return nil, fmt.Errorf("lsm: truncated WAL segment %d", id)
		}
		out = append(out, Entry{
			Key:       append([]byte(nil), raw[:klen]...),
			Value:     append([]byte(nil), raw[klen:klen+vlen]...),
			Tombstone: flags&1 != 0,
		})
		raw = raw[klen+vlen:]
	}
	return out, nil
}
