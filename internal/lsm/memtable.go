package lsm

import (
	"bytes"
	"math/rand"
)

// Entry is one key/value pair. Tombstone marks a deletion that masks older
// versions on lower levels until compaction reclaims them.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

const maxSkipHeight = 12

type skipNode struct {
	entry Entry
	next  [maxSkipHeight]*skipNode
}

// MemTable is the in-memory C0 component: a skiplist, as in RocksDB. Once it
// reaches its size threshold it becomes immutable and is flushed to an SST.
type MemTable struct {
	head     *skipNode
	height   int
	count    int
	byteSize int64
	rng      *rand.Rand
}

// DefaultSeed seeds memtable skiplist height generation when the caller does
// not supply a seed of its own.
const DefaultSeed int64 = 42

// NewMemTable returns an empty memtable with the default height source.
func NewMemTable() *MemTable {
	return NewMemTableSeeded(DefaultSeed)
}

// NewMemTableSeeded returns an empty memtable whose skiplist heights are drawn
// from a private RNG seeded with seed, so tower shapes are reproducible and
// independent across memtables.
func NewMemTableSeeded(seed int64) *MemTable {
	return &MemTable{
		head:   &skipNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len reports the number of live entries (including tombstones).
func (m *MemTable) Len() int { return m.count }

// ByteSize reports the approximate memory footprint of the stored entries.
func (m *MemTable) ByteSize() int64 { return m.byteSize }

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxSkipHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// Put inserts or overwrites a key.
func (m *MemTable) Put(key, value []byte) {
	m.insert(Entry{Key: append([]byte(nil), key...), Value: append([]byte(nil), value...)})
}

// Delete inserts a tombstone for key.
func (m *MemTable) Delete(key []byte) {
	m.insert(Entry{Key: append([]byte(nil), key...), Tombstone: true})
}

func (m *MemTable) insert(e Entry) {
	var prev [maxSkipHeight]*skipNode
	n := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.Key, e.Key) < 0 {
			n = n.next[lvl]
		}
		prev[lvl] = n
	}
	// Overwrite in place if the key exists.
	if cand := prev[0].next[0]; cand != nil && bytes.Equal(cand.entry.Key, e.Key) {
		m.byteSize += int64(len(e.Value)) - int64(len(cand.entry.Value))
		cand.entry.Value = e.Value
		cand.entry.Tombstone = e.Tombstone
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}
	node := &skipNode{entry: e}
	for lvl := 0; lvl < h; lvl++ {
		node.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = node
	}
	m.count++
	m.byteSize += int64(len(e.Key)) + int64(len(e.Value)) + 48
}

// Get returns the entry for key. The boolean reports presence (a tombstone is
// present with Tombstone=true).
func (m *MemTable) Get(key []byte) (Entry, bool) {
	n := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.Key, key) < 0 {
			n = n.next[lvl]
		}
	}
	cand := n.next[0]
	if cand != nil && bytes.Equal(cand.entry.Key, key) {
		return cand.entry, true
	}
	return Entry{}, false
}

// Iter returns an iterator positioned at the first key ≥ start (nil start
// means the smallest key).
func (m *MemTable) Iter(start []byte) *MemIter {
	n := m.head
	if start != nil {
		for lvl := m.height - 1; lvl >= 0; lvl-- {
			for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.Key, start) < 0 {
				n = n.next[lvl]
			}
		}
	}
	return &MemIter{node: n.next[0]}
}

// MemIter walks a memtable in key order.
type MemIter struct {
	node *skipNode
}

// Valid reports whether the iterator is positioned on an entry.
func (it *MemIter) Valid() bool { return it.node != nil }

// Entry returns the current entry; only valid while Valid().
func (it *MemIter) Entry() Entry { return it.node.entry }

// Next advances to the next entry.
func (it *MemIter) Next() { it.node = it.node.next[0] }
