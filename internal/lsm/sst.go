package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/vclock"
)

// Access bundles the timeline, rate table and block cache of the engine
// performing an LSM operation, so the same physical read is priced
// differently for the host path and the on-device NDP path. A zero Access
// (nil TL) performs the work without charging, used for loading and
// maintenance.
type Access struct {
	TL    *vclock.Timeline
	R     hw.Rates
	Cache *BlockCache
	// Bloom, when set, accumulates Bloom-filter probe outcomes for the
	// metrics registry; it never affects virtual-time accounting.
	Bloom *BloomStats
	// Faults, when set, injects read failures into the flash path of this
	// access context (chaos runs; see internal/fault).
	Faults flash.Faults
}

// Charged reports whether this access books virtual time.
func (a Access) Charged() bool { return a.TL != nil }

// TargetBlockBytes is the data-block target size, as in RocksDB. The cost
// model uses it to estimate how many distinct block reads an index access
// path incurs.
const TargetBlockBytes = 4 << 10

const (
	targetBlockBytes = TargetBlockBytes
	footerBytes      = 48
)

// indexEntry is one sparse-index entry: the first key of a data block plus
// the block's physical location, forming the fence pointers of the paper.
type indexEntry struct {
	firstKey []byte
	off      int64
	length   int64
	entries  int
}

// SST is an immutable Sorted String Table stored on flash. The sparse index
// block, Bloom filter and min/max fence pointers are kept in memory once the
// table is opened (nKV reserves device DRAM for exactly this index-block
// mapping); data blocks are always read from flash and charged.
type SST struct {
	file    flash.FileID
	fl      *flash.Flash
	index   []indexEntry
	bloom   *Bloom
	minKey  []byte
	maxKey  []byte
	count   int
	dataLen int64

	// mu guards parsed. parsed memoizes decoded data blocks by block index —
	// a wall-clock optimization only: the table is immutable, entries alias
	// the flash blob, and every virtual-cache miss still performs the charged,
	// fault-injectable flash read before consulting the memo, so virtual time
	// and fault behavior are byte-identical with or without it.
	mu     sync.RWMutex
	parsed [][]Entry // guarded by mu
}

// BuildSST writes the entries (which must be sorted by key, unique) as a new
// SST on fl, charging the write to ac if set, and returns the opened table.
func BuildSST(fl *flash.Flash, entries []Entry, ac Access) (*SST, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("lsm: cannot build empty SST")
	}
	var data bytes.Buffer
	var index []indexEntry
	bloom := NewBloom(len(entries))

	var blockStart int64
	var blockFirst []byte
	blockEntries := 0
	flushBlock := func(endOff int64) {
		if blockEntries == 0 {
			return
		}
		index = append(index, indexEntry{
			firstKey: blockFirst,
			off:      blockStart,
			length:   endOff - blockStart,
			entries:  blockEntries,
		})
		blockEntries = 0
	}

	var scratch [binary.MaxVarintLen64]byte
	prev := []byte(nil)
	for _, e := range entries {
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			return nil, fmt.Errorf("lsm: SST entries out of order or duplicated (%q after %q)", e.Key, prev)
		}
		prev = e.Key
		if blockEntries == 0 {
			blockStart = int64(data.Len())
			blockFirst = append([]byte(nil), e.Key...)
		}
		flags := byte(0)
		if e.Tombstone {
			flags = 1
		}
		data.WriteByte(flags)
		n := binary.PutUvarint(scratch[:], uint64(len(e.Key)))
		data.Write(scratch[:n])
		n = binary.PutUvarint(scratch[:], uint64(len(e.Value)))
		data.Write(scratch[:n])
		data.Write(e.Key)
		data.Write(e.Value)
		bloom.Add(e.Key)
		blockEntries++
		if int64(data.Len())-blockStart >= targetBlockBytes {
			flushBlock(int64(data.Len()))
		}
	}
	flushBlock(int64(data.Len()))

	// Index block.
	indexOff := int64(data.Len())
	binary.Write(&data, binary.LittleEndian, uint32(len(index)))
	for _, ie := range index {
		binary.Write(&data, binary.LittleEndian, uint32(len(ie.firstKey)))
		data.Write(ie.firstKey)
		binary.Write(&data, binary.LittleEndian, uint64(ie.off))
		binary.Write(&data, binary.LittleEndian, uint64(ie.length))
		binary.Write(&data, binary.LittleEndian, uint32(ie.entries))
	}
	indexLen := int64(data.Len()) - indexOff

	// Bloom block.
	bloomOff := int64(data.Len())
	bb := bloom.Marshal()
	data.Write(bb)
	bloomLen := int64(len(bb))

	// Meta block: count, min key, max key.
	metaOff := int64(data.Len())
	binary.Write(&data, binary.LittleEndian, uint64(len(entries)))
	minKey := entries[0].Key
	maxKey := entries[len(entries)-1].Key
	binary.Write(&data, binary.LittleEndian, uint32(len(minKey)))
	data.Write(minKey)
	binary.Write(&data, binary.LittleEndian, uint32(len(maxKey)))
	data.Write(maxKey)
	metaLen := int64(data.Len()) - metaOff

	// Footer.
	var footer [footerBytes]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(indexLen))
	binary.LittleEndian.PutUint64(footer[16:], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(bloomLen))
	binary.LittleEndian.PutUint64(footer[32:], uint64(metaOff))
	binary.LittleEndian.PutUint64(footer[40:], uint64(metaLen))
	data.Write(footer[:])

	id, err := fl.WriteFile(data.Bytes(), ac.TL, ac.R)
	if err != nil {
		return nil, err
	}
	return OpenSST(fl, id)
}

// OpenSST parses the footer, index, Bloom filter and meta block of a stored
// SST into memory. Opening is a maintenance operation and is not charged.
func OpenSST(fl *flash.Flash, id flash.FileID) (*SST, error) {
	size := fl.Size(id)
	if size < footerBytes {
		return nil, fmt.Errorf("lsm: SST file %d too small (%d bytes)", id, size)
	}
	raw, err := fl.ReadAt(id, 0, size, nil, hw.Rates{}, nil)
	if err != nil {
		return nil, err
	}
	footer := raw[size-footerBytes:]
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	bloomLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	metaOff := int64(binary.LittleEndian.Uint64(footer[32:]))
	metaLen := int64(binary.LittleEndian.Uint64(footer[40:]))
	if indexOff < 0 || indexOff+indexLen > size || bloomOff+bloomLen > size || metaOff+metaLen > size {
		return nil, fmt.Errorf("lsm: SST file %d has corrupt footer", id)
	}

	t := &SST{file: id, fl: fl, dataLen: indexOff}

	// Index block.
	ib := raw[indexOff : indexOff+indexLen]
	if len(ib) < 4 {
		return nil, fmt.Errorf("lsm: SST file %d has corrupt index block", id)
	}
	n := int(binary.LittleEndian.Uint32(ib))
	ib = ib[4:]
	t.index = make([]indexEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(ib) < 4 {
			return nil, fmt.Errorf("lsm: SST file %d index entry %d truncated", id, i)
		}
		klen := int(binary.LittleEndian.Uint32(ib))
		ib = ib[4:]
		if len(ib) < klen+20 {
			return nil, fmt.Errorf("lsm: SST file %d index entry %d truncated", id, i)
		}
		key := append([]byte(nil), ib[:klen]...)
		ib = ib[klen:]
		off := int64(binary.LittleEndian.Uint64(ib))
		length := int64(binary.LittleEndian.Uint64(ib[8:]))
		entries := int(binary.LittleEndian.Uint32(ib[16:]))
		ib = ib[20:]
		t.index = append(t.index, indexEntry{firstKey: key, off: off, length: length, entries: entries})
	}

	t.bloom = UnmarshalBloom(raw[bloomOff : bloomOff+bloomLen])

	mb := raw[metaOff : metaOff+metaLen]
	if len(mb) < 12 {
		return nil, fmt.Errorf("lsm: SST file %d has corrupt meta block", id)
	}
	t.count = int(binary.LittleEndian.Uint64(mb))
	mb = mb[8:]
	mklen := int(binary.LittleEndian.Uint32(mb))
	mb = mb[4:]
	t.minKey = append([]byte(nil), mb[:mklen]...)
	mb = mb[mklen:]
	xklen := int(binary.LittleEndian.Uint32(mb))
	mb = mb[4:]
	t.maxKey = append([]byte(nil), mb[:xklen]...)
	return t, nil
}

// Count reports the number of entries in the table.
func (t *SST) Count() int { return t.count }

// DataBytes reports the size of the data-block section.
func (t *SST) DataBytes() int64 { return t.dataLen }

// File reports the backing flash file.
func (t *SST) File() flash.FileID { return t.file }

// MinKey and MaxKey are the fence pointers of the table.
func (t *SST) MinKey() []byte { return t.minKey }

// MaxKey reports the largest key in the table.
func (t *SST) MaxKey() []byte { return t.maxKey }

// InRange reports whether key could be within the table's fence pointers.
func (t *SST) InRange(key []byte) bool {
	return bytes.Compare(key, t.minKey) >= 0 && bytes.Compare(key, t.maxKey) <= 0
}

// OverlapsRange reports whether [lo,hi] intersects the table's key range.
// A nil bound is unbounded.
func (t *SST) OverlapsRange(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(t.minKey, hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(t.maxKey, lo) < 0 {
		return false
	}
	return true
}

// blockIdx returns the index of the data block that could contain key, or -1.
func (t *SST) blockIdx(key []byte) int {
	lo, hi := 0, len(t.index)-1
	if hi < 0 || bytes.Compare(key, t.index[0].firstKey) < 0 {
		return -1
	}
	// Find the last block whose first key ≤ key.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if bytes.Compare(t.index[mid].firstKey, key) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func indexDepth(n int) int {
	d := 1
	for n > 1 {
		n /= 2
		d++
	}
	return d
}

// parseBlock decodes all entries of one raw data block. sizeHint pre-sizes
// the output from the index entry's recorded count (0 = unknown).
func parseBlock(raw []byte, sizeHint int) ([]Entry, error) {
	out := make([]Entry, 0, sizeHint)
	for len(raw) > 0 {
		flags := raw[0]
		raw = raw[1:]
		klen, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("lsm: corrupt data block (key length)")
		}
		raw = raw[n:]
		vlen, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("lsm: corrupt data block (value length)")
		}
		raw = raw[n:]
		if uint64(len(raw)) < klen+vlen {
			return nil, fmt.Errorf("lsm: corrupt data block (truncated entry)")
		}
		out = append(out, Entry{
			Key:       raw[:klen:klen],
			Value:     raw[klen : klen+vlen : klen+vlen],
			Tombstone: flags&1 != 0,
		})
		raw = raw[klen+vlen:]
	}
	return out, nil
}

// readBlock loads data block i through the block cache; misses read from
// flash and charge the flash path, hits charge only the in-memory copy.
func (t *SST) readBlock(i int, ac Access) ([]Entry, error) {
	return t.readBlockMode(i, ac, false)
}

// readBlockMode distinguishes random accesses (which pay the page latency)
// from sequential continuation reads (latency hidden by channel pipelining).
func (t *SST) readBlockMode(i int, ac Access, sequential bool) ([]Entry, error) {
	ie := t.index[i]
	if cached, ok := ac.Cache.Get(t.file, i); ok {
		if ac.Charged() {
			// The block is already decoded in memory; a hit costs roughly
			// one entry's worth of copying, not the whole block.
			per := ie.length
			if n := int64(len(cached)); n > 0 {
				per = ie.length / n
			}
			ac.R.Memcpy(ac.TL, per)
		}
		return cached, nil
	}
	read := t.fl.ReadAt
	if sequential {
		read = t.fl.ReadAtSeq
	}
	// The flash read happens unconditionally: it books the virtual-time
	// charge and gives fault injection its shot. Only then may the memoized
	// decode stand in for re-parsing the returned bytes.
	raw, err := read(t.file, ie.off, ie.length, ac.TL, ac.R, ac.Faults)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	var entries []Entry
	if t.parsed != nil {
		entries = t.parsed[i]
	}
	t.mu.RUnlock()
	if entries == nil {
		entries, err = parseBlock(raw, ie.entries)
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		if t.parsed == nil {
			t.parsed = make([][]Entry, len(t.index))
		}
		t.parsed[i] = entries
		t.mu.Unlock()
	}
	ac.Cache.Put(t.file, i, entries, ie.length)
	return entries, nil
}

// Get performs a point lookup, honouring the Bloom filter (host side only,
// per the paper) and the fence pointers.
func (t *SST) Get(key []byte, ac Access) (Entry, bool, error) {
	if !t.InRange(key) {
		return Entry{}, false, nil
	}
	if !ac.R.OnDevice {
		if !t.bloom.MayContain(key) {
			ac.Bloom.AddNegative()
			return Entry{}, false, nil
		}
		ac.Bloom.AddPositive()
	}
	bi := t.blockIdx(key)
	if bi < 0 {
		return Entry{}, false, nil
	}
	if ac.Charged() {
		ac.R.SeekIndex(ac.TL, indexDepth(len(t.index)))
	}
	entries, err := t.readBlock(bi, ac)
	if err != nil {
		return Entry{}, false, err
	}
	if ac.Charged() {
		ac.R.SeekData(ac.TL, indexDepth(len(entries)))
		ac.R.Memcmp(ac.TL, int64(len(key))*int64(indexDepth(len(entries))), indexDepth(len(entries)))
	}
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(entries) && bytes.Equal(entries[lo].Key, key) {
		return entries[lo], true, nil
	}
	return Entry{}, false, nil
}

// SSTIter streams an SST in key order, loading data blocks lazily.
type SSTIter struct {
	t       *SST
	ac      Access
	block   []Entry
	blockNo int
	pos     int
	err     error
	loaded  bool // a block has been read: further reads are sequential
}

// Iter returns an iterator positioned at the first key ≥ start.
func (t *SST) Iter(start []byte, ac Access) *SSTIter {
	it := &SSTIter{t: t, ac: ac, blockNo: 0}
	if start != nil {
		bi := t.blockIdx(start)
		if bi < 0 {
			bi = 0
		}
		it.blockNo = bi
		if ac.Charged() {
			ac.R.SeekIndex(ac.TL, indexDepth(len(t.index)))
		}
	}
	it.loadBlock()
	if start != nil {
		for it.Valid() && bytes.Compare(it.Entry().Key, start) < 0 {
			it.Next()
		}
	}
	return it
}

func (it *SSTIter) loadBlock() {
	it.block = nil
	it.pos = 0
	for it.blockNo < len(it.t.index) {
		b, err := it.t.readBlockMode(it.blockNo, it.ac, it.loaded)
		if err != nil {
			it.err = err
			return
		}
		it.loaded = true
		if len(b) > 0 {
			it.block = b
			return
		}
		it.blockNo++
	}
}

// Err reports a read error encountered while iterating.
func (it *SSTIter) Err() error { return it.err }

// Valid reports whether the iterator is positioned on an entry.
func (it *SSTIter) Valid() bool { return it.err == nil && it.pos < len(it.block) }

// Entry returns the current entry; only valid while Valid().
func (it *SSTIter) Entry() Entry { return it.block[it.pos] }

// Next advances to the next entry, crossing block boundaries as needed.
func (it *SSTIter) Next() {
	it.pos++
	if it.pos >= len(it.block) {
		it.blockNo++
		it.loadBlock()
	}
}
