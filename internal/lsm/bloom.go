package lsm

import (
	"encoding/binary"
	"hash/fnv"
	"sync/atomic"
)

// BloomStats counts Bloom-filter probe outcomes across the SST point lookups
// of one engine run. A negative probe excluded the SST without any flash
// read (the filter paid off); a positive probe let the lookup proceed to the
// data block (including false positives). The counters are atomic and every
// method tolerates a nil receiver, so uninstrumented paths pass no stats at
// zero cost.
type BloomStats struct {
	negative int64
	positive int64
}

// AddNegative records a probe where the filter excluded the SST.
func (s *BloomStats) AddNegative() {
	if s != nil {
		atomic.AddInt64(&s.negative, 1)
	}
}

// AddPositive records a probe that passed the filter.
func (s *BloomStats) AddPositive() {
	if s != nil {
		atomic.AddInt64(&s.positive, 1)
	}
}

// Counts returns the accumulated (negative, positive) probe counts.
func (s *BloomStats) Counts() (negative, positive int64) {
	if s == nil {
		return 0, 0
	}
	return atomic.LoadInt64(&s.negative), atomic.LoadInt64(&s.positive)
}

// Bloom is a standard Bloom filter over record keys, used by the host engine
// (as in MyRocks/RocksDB) to exclude SST files during point lookups. Per the
// paper, the NDP engine does not probe Bloom filters on device — they have
// already been probed on the host side when the invocation was built.
type Bloom struct {
	bits []byte
	k    uint32
}

// NewBloom sizes a filter for n keys at roughly 10 bits per key (k=7), the
// RocksDB default ballpark.
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * 10
	if nbits < 64 {
		nbits = 64
	}
	return &Bloom{bits: make([]byte, (nbits+7)/8), k: 7}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	return h1, h2
}

// Add inserts a key.
func (b *Bloom) Add(key []byte) {
	h1, h2 := bloomHash(key)
	nbits := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether the key is possibly present.
func (b *Bloom) MayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	nbits := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// Marshal serializes the filter.
func (b *Bloom) Marshal() []byte {
	out := make([]byte, 4+len(b.bits))
	binary.LittleEndian.PutUint32(out, b.k)
	copy(out[4:], b.bits)
	return out
}

// UnmarshalBloom deserializes a filter.
func UnmarshalBloom(data []byte) *Bloom {
	if len(data) < 4 {
		return &Bloom{bits: nil, k: 7}
	}
	k := binary.LittleEndian.Uint32(data)
	bits := make([]byte, len(data)-4)
	copy(bits, data[4:])
	return &Bloom{bits: bits, k: k}
}
