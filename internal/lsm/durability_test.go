package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridndp/internal/flash"
)

func durableCfg() Config {
	return Config{
		MemTableBytes:  8 << 10,
		MaxL1Files:     4,
		LevelRatio:     4,
		BaseLevelBytes: 64 << 10,
		Durable:        true,
		WALSyncBytes:   1 << 10,
	}
}

func TestReopenRestoresFlushedData(t *testing.T) {
	fl := testFlash()
	tr := NewTree(fl, durableCfg())
	for i := 0; i < 3000; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// "Crash": drop the tree, reopen from the flash root.
	re, err := Reopen(fl, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 42, 1500, 2999} {
		v, ok, err := re.Get(key(i), Access{})
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after reopen = %q,%v,%v", i, v, ok, err)
		}
	}
	n := 0
	for it := re.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
		n++
	}
	if n != 3000 {
		t.Fatalf("reopened scan found %d keys", n)
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	fl := testFlash()
	tr := NewTree(fl, durableCfg())
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	// Un-flushed tail: updates, inserts and a delete, then Sync (group
	// commit) without flushing.
	tr.Put(key(100), []byte("updated"))
	tr.Put(key(9000), []byte("fresh"))
	tr.Delete(key(200))
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}

	re, err := Reopen(fl, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := re.Get(key(100), Access{}); !ok || string(v) != "updated" {
		t.Fatalf("replayed update lost: %q %v", v, ok)
	}
	if v, ok, _ := re.Get(key(9000), Access{}); !ok || string(v) != "fresh" {
		t.Fatalf("replayed insert lost: %q %v", v, ok)
	}
	if _, ok, _ := re.Get(key(200), Access{}); ok {
		t.Fatal("replayed tombstone lost")
	}
	if v, ok, _ := re.Get(key(300), Access{}); !ok || !bytes.Equal(v, val(300)) {
		t.Fatal("flushed data lost during replay")
	}
}

func TestReopenSurvivesSecondRestart(t *testing.T) {
	fl := testFlash()
	tr := NewTree(fl, durableCfg())
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), val(i))
	}
	tr.Flush()
	re1, err := Reopen(fl, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Write through the reopened tree, flush, restart again.
	for i := 1000; i < 1500; i++ {
		re1.Put(key(i), val(i))
	}
	if err := re1.Flush(); err != nil {
		t.Fatal(err)
	}
	re2, err := Reopen(fl, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it := re2.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
		n++
	}
	if n != 1500 {
		t.Fatalf("second reopen found %d keys, want 1500", n)
	}
}

func TestReopenErrors(t *testing.T) {
	fl := testFlash()
	if _, err := Reopen(fl, durableCfg()); err == nil {
		t.Fatal("reopen without a root must fail")
	}
	cfg := durableCfg()
	cfg.Durable = false
	if _, err := Reopen(fl, cfg); err == nil {
		t.Fatal("reopen without Durable must fail")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &manifest{
		l1:     []flash.FileID{3, 1, 2},
		levels: [][]flash.FileID{{7, 8}, {}, {9}},
		wal:    []flash.FileID{11},
		tiered: true,
	}
	got, err := decodeManifest(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(m) {
		t.Fatalf("round trip mismatch:\n%v\n%v", got, m)
	}
	if _, err := decodeManifest([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated manifest accepted")
	}
	if _, err := decodeManifest(make([]byte, 16)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDurabilityProperty(t *testing.T) {
	// Random put/delete workload; after Sync + reopen, the tree matches the
	// model exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := testFlash()
		tr := NewTree(fl, durableCfg())
		model := map[string]string{}
		for op := 0; op < 1500; op++ {
			k := fmt.Sprintf("k%03d", rng.Intn(200))
			if rng.Intn(4) == 0 {
				tr.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", op)
				tr.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		if err := tr.Sync(); err != nil {
			return false
		}
		re, err := Reopen(fl, durableCfg())
		if err != nil {
			return false
		}
		for k, v := range model {
			got, ok, err := re.Get([]byte(k), Access{})
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		n := 0
		for it := re.Scan(nil, nil, Access{}); it.Valid(); it.Next() {
			if model[string(it.Entry().Key)] != string(it.Entry().Value) {
				return false
			}
			n++
		}
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
