package lsm

import "bytes"

// mergeSource abstracts memtable and SST iterators for the k-way merge.
// Sources are ordered newest (age 0) to oldest; on equal keys the youngest
// source wins, which implements the "most recent version shadows lower
// levels" rule of the LSM read path.
type mergeSource interface {
	valid() bool
	entry() Entry
	next()
	err() error
}

type memSource struct{ it *MemIter }

func (s *memSource) valid() bool  { return s.it.Valid() }
func (s *memSource) entry() Entry { return s.it.Entry() }
func (s *memSource) next()        { s.it.Next() }
func (s *memSource) err() error   { return nil }

type sstSource struct{ it *SSTIter }

func (s *sstSource) valid() bool  { return s.it.Valid() }
func (s *sstSource) entry() Entry { return s.it.Entry() }
func (s *sstSource) next()        { s.it.Next() }
func (s *sstSource) err() error   { return s.it.Err() }

// mergeIter merges k sources with newest-wins deduplication. It maintains a
// binary min-heap ordered by (key, age); each heap comparison is charged to
// the access as an internal-key comparison (paper Table 4: "compare internal
// keys"), batched per Next call.
type mergeIter struct {
	srcs     []mergeSource // heap, indexed
	ages     []int
	ac       Access
	keepTomb bool
	cur      Entry
	curOK    bool
	failed   error
	cmpBytes int64
	cmpCount int
}

func newMergeIter(srcs []mergeSource, ac Access, keepTombstones bool) *mergeIter {
	m := &mergeIter{ac: ac, keepTomb: keepTombstones}
	for age, s := range srcs {
		if s.err() != nil {
			m.failed = s.err()
		}
		if s.valid() {
			m.srcs = append(m.srcs, s)
			m.ages = append(m.ages, age)
		}
	}
	for i := len(m.srcs)/2 - 1; i >= 0; i-- {
		m.down(i)
	}
	m.advance()
	return m
}

func (m *mergeIter) less(i, j int) bool {
	a, b := m.srcs[i].entry().Key, m.srcs[j].entry().Key
	c := bytes.Compare(a, b)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	m.cmpBytes += int64(n)
	m.cmpCount++
	if c != 0 {
		return c < 0
	}
	return m.ages[i] < m.ages[j] // younger source first on ties
}

func (m *mergeIter) swap(i, j int) {
	m.srcs[i], m.srcs[j] = m.srcs[j], m.srcs[i]
	m.ages[i], m.ages[j] = m.ages[j], m.ages[i]
}

func (m *mergeIter) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(m.srcs) && m.less(l, least) {
			least = l
		}
		if r < len(m.srcs) && m.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		m.swap(i, least)
		i = least
	}
}

// popTopKey pops every source currently positioned on the same key as the
// heap top, returning the youngest version.
func (m *mergeIter) popTopKey() (Entry, bool) {
	if len(m.srcs) == 0 {
		return Entry{}, false
	}
	if len(m.srcs) == 1 {
		// Single-source fast path: keys are strictly increasing within one
		// source, so the dedup loop could only ever pop this one entry. A
		// one-element heap never calls less(), so no comparison charge is
		// skipped here either.
		s := m.srcs[0]
		e := s.entry()
		s.next()
		if s.err() != nil {
			m.failed = s.err()
		}
		if !s.valid() {
			m.srcs = m.srcs[:0]
			m.ages = m.ages[:0]
		}
		return e, true
	}
	top := m.srcs[0].entry()
	key := top.Key
	best := top
	bestAge := m.ages[0]
	for len(m.srcs) > 0 && bytes.Equal(m.srcs[0].entry().Key, key) {
		if m.ages[0] < bestAge {
			best = m.srcs[0].entry()
			bestAge = m.ages[0]
		}
		s := m.srcs[0]
		s.next()
		if s.err() != nil {
			m.failed = s.err()
		}
		if s.valid() {
			m.down(0)
		} else {
			last := len(m.srcs) - 1
			m.swap(0, last)
			m.srcs = m.srcs[:last]
			m.ages = m.ages[:last]
			if len(m.srcs) > 0 {
				m.down(0)
			}
		}
	}
	return best, true
}

func (m *mergeIter) advance() {
	for {
		e, ok := m.popTopKey()
		if !ok {
			m.curOK = false
			m.flushCharges()
			return
		}
		if e.Tombstone && !m.keepTomb {
			continue
		}
		m.cur = e
		m.curOK = true
		// Batch comparison charges to keep per-record overhead low; the
		// timeline is sequential within one engine so deferral is safe.
		if m.cmpCount >= 512 {
			m.flushCharges()
		}
		return
	}
}

func (m *mergeIter) flushCharges() {
	if m.ac.Charged() && (m.cmpBytes > 0 || m.cmpCount > 0) {
		m.ac.R.Memcmp(m.ac.TL, m.cmpBytes, m.cmpCount)
	}
	m.cmpBytes = 0
	m.cmpCount = 0
}

// Valid reports whether the iterator holds a current entry.
func (m *mergeIter) Valid() bool { return m.failed == nil && m.curOK }

// Entry returns the current (youngest-version) entry.
func (m *mergeIter) Entry() Entry { return m.cur }

// Next advances past the current key.
func (m *mergeIter) Next() { m.advance() }

// Err reports the first source error.
func (m *mergeIter) Err() error { return m.failed }
