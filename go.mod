module hybridndp

go 1.22
