package hybridndp

import (
	"sync"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/table"
)

var (
	sysOnce sync.Once
	sysInst *System
	sysErr  error
)

// testSystem loads one small shared JOB instance for all façade tests.
func testSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, sysErr = OpenJOB(0.01, hw.Cosmos())
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

func TestRunHostStacksAgree(t *testing.T) {
	s := testSystem(t)
	q := job.QueryByName("1a")
	blk, err := s.Run(q, coop.Strategy{Kind: coop.BlockOnly})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := s.Run(q, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Result.RowCount != nat.Result.RowCount {
		t.Fatalf("row counts differ: blk=%d native=%d", blk.Result.RowCount, nat.Result.RowCount)
	}
	if blk.Elapsed <= nat.Elapsed {
		t.Fatalf("BLK stack (%v) must be slower than native (%v): abstraction tax", blk.Elapsed, nat.Elapsed)
	}
}

func TestAllStrategiesProduceIdenticalResults(t *testing.T) {
	s := testSystem(t)
	for _, name := range []string{"1a", "8c", "17b", "32b", "6f"} {
		q := job.QueryByName(name)
		if q == nil {
			t.Fatalf("query %s missing", name)
		}
		ref, err := s.Run(q, coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			t.Fatalf("%s host: %v", name, err)
		}
		strategies := []coop.Strategy{{Kind: coop.NDPOnly}}
		splits, err := s.Splits(q)
		if err != nil {
			t.Fatalf("%s splits: %v", name, err)
		}
		strategies = append(strategies, splits...)
		for _, st := range strategies {
			rep, err := s.Run(q, st)
			if err != nil {
				t.Fatalf("%s %v: %v", name, st, err)
			}
			if rep.Result.RowCount != ref.Result.RowCount {
				t.Fatalf("%s %v: row count %d != host %d", name, st, rep.Result.RowCount, ref.Result.RowCount)
			}
			if len(rep.Result.Rows) > 0 && len(ref.Result.Rows) > 0 {
				// Aggregate queries: the single result row must match.
				if len(q.Aggregates) > 0 && len(q.GroupBy) == 0 {
					for i := range ref.Result.Rows[0] {
						a, b := ref.Result.Rows[0][i], rep.Result.Rows[0][i]
						if a.String() != b.String() {
							t.Fatalf("%s %v: aggregate %d = %v, host says %v", name, st, i, b, a)
						}
					}
				}
			}
		}
	}
}

func TestHybridOverlapBeatsSerialParts(t *testing.T) {
	s := testSystem(t)
	q := job.QueryByName("8c")
	splits, err := s.Splits(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range splits {
		rep, err := s.Run(q, st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if rep.Batches == 0 {
			t.Fatalf("%v produced no batches", st)
		}
		if rep.Elapsed <= 0 {
			t.Fatalf("%v has non-positive elapsed time", st)
		}
		// The hybrid elapsed time must be at least the device's busy time
		// outside waiting (sanity of the two-timeline accounting).
		var devBusy, devWait float64
		for cat, d := range rep.DeviceAccount {
			if cat == hw.CatWaitSlots || cat == hw.CatNDPSetup {
				devWait += float64(d)
			} else {
				devBusy += float64(d)
			}
		}
		if float64(rep.Elapsed) < devBusy {
			t.Fatalf("%v: elapsed %v < device busy %v", st, rep.Elapsed, devBusy)
		}
	}
}

func TestDecideReturnsCostPicture(t *testing.T) {
	s := testSystem(t)
	for _, name := range []string{"1a", "8c", "17b"} {
		d, err := s.Decide(job.QueryByName(name))
		if err != nil {
			t.Fatal(err)
		}
		sc := d.Costs
		if sc.HostTotal <= 0 || sc.NDPTotal <= 0 || sc.CTarget <= 0 {
			t.Fatalf("%s: degenerate costs %+v", name, sc)
		}
		if len(sc.CNode) != d.Plan.NumTables() {
			t.Fatalf("%s: %d split points for %d tables", name, len(sc.CNode), d.Plan.NumTables())
		}
		for k := 1; k < len(sc.CNode); k++ {
			if sc.CNode[k] < sc.CNode[k-1]-1 { // cumulative within fp tolerance
				t.Fatalf("%s: c_node not cumulative at H%d: %v", name, k, sc.CNode)
			}
		}
		if d.Reason == "" {
			t.Fatalf("%s: decision without reason", name)
		}
	}
}

func TestRunAutoExecutesDecision(t *testing.T) {
	s := testSystem(t)
	rep, d, err := s.RunAuto(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result == nil || rep.Elapsed <= 0 {
		t.Fatal("empty report")
	}
	want := DecisionStrategy(d)
	if rep.Strategy.Kind != want.Kind {
		t.Fatalf("executed %v, decision said %v", rep.Strategy, want)
	}
}

func TestSQLThroughFacade(t *testing.T) {
	s := testSystem(t)
	q, err := s.Query(`SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk,
		keyword AS k WHERE k.id = mk.keyword_id AND t.id = mk.movie_id
		AND k.keyword = 'sequel'`)
	if err != nil {
		t.Fatal(err)
	}
	rep, d, err := s.RunAuto(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.RowCount != 1 || d.Reason == "" {
		t.Fatalf("SQL query misbehaved: %d rows, reason %q", rep.Result.RowCount, d.Reason)
	}
	if _, err := s.Query("SELECT FROM nothing"); err == nil {
		t.Fatal("bad SQL must fail")
	}
	if _, err := s.Query("SELECT MIN(x.y) FROM ghost AS x"); err == nil {
		t.Fatal("unknown table must fail validation")
	}
}

func TestRunMultiThroughFacade(t *testing.T) {
	s := testSystem(t)
	q := job.QueryByName("1a")
	single, err := s.Run(q, coop.Strategy{Kind: coop.Hybrid, Split: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := s.RunMulti(q, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Result.RowCount != single.Result.RowCount {
		t.Fatalf("multi-device result %d != single %d", multi.Result.RowCount, single.Result.RowCount)
	}
	if multi.Devices != 3 {
		t.Fatalf("Devices = %d", multi.Devices)
	}
}

// TestSingleTableSplits is the join-free regression: Splits must classify a
// single-table query as the H0-only strategy set (not an error), and the H0
// execution — device-side scan+filter, host-side finalize — must agree with
// the host-native result.
func TestSingleTableSplits(t *testing.T) {
	s := testSystem(t)
	q, err := s.Query(`SELECT MIN(t.title) FROM title AS t WHERE t.production_year > 2000`)
	if err != nil {
		t.Fatal(err)
	}
	splits, err := s.Splits(q)
	if err != nil {
		t.Fatalf("Splits on a join-free query: %v", err)
	}
	if len(splits) != 1 || splits[0].Kind != coop.Hybrid || splits[0].Split != -1 {
		t.Fatalf("want the H0-only set, got %v", splits)
	}
	ref, err := s.Run(q, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := s.Run(q, splits[0])
	if err != nil {
		t.Fatalf("single-table H0 execution: %v", err)
	}
	if h0.Result.RowCount != ref.Result.RowCount {
		t.Fatalf("H0 rows %d != host %d", h0.Result.RowCount, ref.Result.RowCount)
	}
	if len(ref.Result.Rows) > 0 && len(h0.Result.Rows) > 0 &&
		ref.Result.Rows[0][0].String() != h0.Result.Rows[0][0].String() {
		t.Fatalf("H0 aggregate %v != host %v", h0.Result.Rows[0][0], ref.Result.Rows[0][0])
	}
	if h0.Batches == 0 {
		t.Fatal("single-table H0 produced no shared-buffer batches")
	}
	// The decision path must classify it too (NDP vs host, never an error).
	d, err := s.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	if DecisionStrategy(d).Kind == coop.Hybrid && len(d.Plan.Steps) == 0 && DecisionStrategy(d).Split > 0 {
		t.Fatalf("join-free decision chose an interior split: %v", d.StrategyLabel())
	}
}

func TestEmptySystemUsable(t *testing.T) {
	s, err := New(hw.Cosmos())
	if err != nil {
		t.Fatal(err)
	}
	sch := table.MustSchema("kvp", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "v", Type: table.Char, Size: 8, Nullable: true},
	}, "id")
	tbl, err := s.Catalog.CreateTable(sch)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(1); i <= 100; i++ {
		if err := tbl.Insert([]table.Value{table.IntVal(i), table.StrVal("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := tbl.RowCount(); n != 100 {
		t.Fatalf("RowCount = %d", n)
	}
}
