// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5), plus the ablation benches of DESIGN.md §5. Run with
//
//	go test -bench=. -benchmem
//
// Results are virtual-clock milliseconds reported as custom metrics
// ("<label>-ms"); wall-clock ns/op only reflects simulator speed. The
// dataset scale is 0.05 by default and can be overridden through the
// HYBRIDNDP_SCALE environment variable.
package hybridndp_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/ftl"
	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/sched"
	"hybridndp/internal/serve"
	"hybridndp/internal/vclock"
)

var (
	benchOnce sync.Once
	benchH    *harness.H
	benchErr  error
)

func benchHarness(b *testing.B) *harness.H {
	b.Helper()
	benchOnce.Do(func() {
		scale := 0.05
		if s := os.Getenv("HYBRIDNDP_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		benchH, benchErr = harness.New(scale, hw.Cosmos())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

// report attaches a virtual-time metric to the benchmark output. Metric
// units must not contain whitespace; labels are sanitized.
func report(b *testing.B, label string, msVal float64) {
	label = strings.ReplaceAll(label, " ", "-")
	b.ReportMetric(msVal, label+"-ms")
}

// BenchmarkFig2IntroQ8c regenerates the introductory experiment (Fig. 2):
// Q8.c under host-only, H0, the best interior split, and full NDP.
func BenchmarkFig2IntroQ8c(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msr, err := h.Fig2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, m := range msr {
				report(b, m.Strategy.String(), m.Elapsed.Milliseconds())
			}
		}
	}
}

// BenchmarkFig11Stacks regenerates Exp 1: Q8.c, Q17.b, Q32.b across the
// BLK, NATIVE, NDP and hybridNDP stacks.
func BenchmarkFig11Stacks(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig11(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				report(b, r.Query+"-"+r.Stack, r.Time.Milliseconds())
			}
		}
	}
}

// BenchmarkTable3IntermediateQ17b regenerates the Exp 1 correlation table:
// intermediate-result volume vs execution time per split of Q17.b.
func BenchmarkTable3IntermediateQ17b(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := h.Table3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				report(b, r.Split, r.Time.Milliseconds())
				report(b, r.Split+"-interm-rows", float64(r.Intermediate))
			}
		}
	}
}

// BenchmarkFig12JOBSweep regenerates Exp 2: the full 113-query sweep. Slow —
// roughly two minutes per iteration at the default scale.
func BenchmarkFig12JOBSweep(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig12(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			wins, pars := 0, 0
			for _, r := range rows {
				switch r.Class {
				case "win":
					wins++
				case "par":
					pars++
				}
			}
			report(b, "hybrid-win-pct", 100*float64(wins)/float64(len(rows)))
			report(b, "hybrid-winpar-pct", 100*float64(wins+pars)/float64(len(rows)))
		}
	}
}

// BenchmarkFig12JOBSweepParallel is BenchmarkFig12JOBSweep with the
// deterministic parallel runner enabled (4 workers): identical virtual-time
// results, wall-clock divided across the worker pool.
func BenchmarkFig12JOBSweepParallel(b *testing.B) {
	hp := *benchHarness(b) // shallow copy so the shared harness stays sequential
	hp.Workers = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hp.Fig12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13DecisionQuality regenerates Exp 3: optimizer decisions
// against the measured oracle. Slow — it re-runs the sweep.
func BenchmarkFig13DecisionQuality(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig13(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best, acc := 0, 0
			for _, r := range rows {
				switch r.Class {
				case "best":
					best++
				case "acceptable":
					acc++
				}
			}
			report(b, "decision-best-pct", 100*float64(best)/float64(len(rows)))
			report(b, "decision-suitable-pct", 100*float64(best+acc)/float64(len(rows)))
		}
	}
}

// BenchmarkFig14NonIndexedJoin regenerates Exp 4: the Listing 2 two-table
// join on non-indexed columns under BLK, NATIVE and NDP.
func BenchmarkFig14NonIndexedJoin(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig14(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				report(b, r.Projection+"-"+r.Stack, r.Time.Milliseconds())
			}
		}
	}
}

// BenchmarkFig15InSituIndex regenerates Exp 5: device BNL vs device BNLI vs
// the host's indexed plan.
func BenchmarkFig15InSituIndex(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig15(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				report(b, r.Projection+"-"+r.Variant, r.Time.Milliseconds())
			}
		}
	}
}

// BenchmarkFig16SplitSweep regenerates Exp 6: Q8.c forced through block,
// H0..H6 and full NDP.
func BenchmarkFig16SplitSweep(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msr, err := h.Fig16(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, m := range msr {
				report(b, m.Strategy.String(), m.Elapsed.Milliseconds())
			}
		}
	}
}

// BenchmarkFig17Table4Timeline regenerates the Q8.d co-processing analysis:
// batch timeline and host/device breakdowns.
func BenchmarkFig17Table4Timeline(b *testing.B) {
	h := benchHarness(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig17Table4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "elapsed", res.Report.Elapsed.Milliseconds())
			report(b, "host-wait-pct", res.HostWaitPct)
			report(b, "batches", float64(res.Report.Batches))
		}
	}
}

// BenchmarkProfilerCalibration runs the hardware profiling benchmark and
// reports the CoreMark-derived compute ratio (paper: 92343/2964 ≈ 31×).
func BenchmarkProfilerCalibration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := hw.Profiler{Base: hw.Cosmos(), Quick: true}
		res := p.Run()
		if i == 0 {
			report(b, "compute-ratio", res.Model.ComputeRatio())
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationComputeRatio sweeps the device CoreMark score: weaker
// devices push the best split earlier (toward H0), stronger ones later —
// the §7 discussion about enterprise-class smart storage.
func BenchmarkAblationComputeRatio(b *testing.B) {
	h := benchHarness(b)
	q := job.QueryByName("8c")
	for _, coreMark := range []float64{1000, 2964, 12000, 46000} {
		b.Run(fmt.Sprintf("devCoreMark=%0.f", coreMark), func(b *testing.B) {
			b.ReportAllocs()
			m := h.DS.Model
			m.DeviceCoreMark = coreMark
			hv := h.WithModel(m)
			for i := 0; i < b.N; i++ {
				msr, _, err := hv.SweepStrategies(q)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if best, ok := harness.BestHybrid(msr); ok {
						report(b, "best-"+best.Strategy.String(), best.Elapsed.Milliseconds())
					}
					if ndp, ok := harness.ByKind(msr, coop.NDPOnly); ok {
						report(b, "ndp", ndp.Elapsed.Milliseconds())
					}
				}
			}
		})
	}
}

// BenchmarkAblationPCIe sweeps the interconnect generation: faster links
// shrink the transfer term and move crossovers toward host-side execution.
func BenchmarkAblationPCIe(b *testing.B) {
	h := benchHarness(b)
	q := job.QueryByName("8c")
	for _, gen := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("pcie-gen%d", gen), func(b *testing.B) {
			b.ReportAllocs()
			m := h.DS.Model
			m.PCIeVersion = gen
			hv := h.WithModel(m)
			for i := 0; i < b.N; i++ {
				msr, _, err := hv.SweepStrategies(q)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if best, ok := harness.BestHybrid(msr); ok {
						report(b, "best-"+best.Strategy.String(), best.Elapsed.Milliseconds())
					}
				}
			}
		})
	}
}

// BenchmarkAblationCacheFormat compares the row-cache and pointer-cache
// intermediate formats on the device for a deep plan (paper §4.2 switches
// at >2 tables; this shows why).
func BenchmarkAblationCacheFormat(b *testing.B) {
	h := benchHarness(b)
	q := job.QueryByName("8c")
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, cf := range []struct {
		name string
		fmt  coop.CacheFormat
	}{{"auto", coop.CacheAuto}, {"row", coop.CacheRow}, {"pointer", coop.CachePointer}} {
		b.Run(cf.name, func(b *testing.B) {
			b.ReportAllocs()
			old := h.Exec.CacheFormat
			h.Exec.CacheFormat = cf.fmt
			defer func() { h.Exec.CacheFormat = old }()
			for i := 0; i < b.N; i++ {
				rep, err := h.Exec.Run(p, coop.Strategy{Kind: coop.NDPOnly})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					report(b, "ndp", rep.Elapsed.Milliseconds())
				}
			}
		})
	}
}

// BenchmarkAblationSlots sweeps the shared-buffer slot count, which governs
// how much the device can run ahead of the host before stalling.
func BenchmarkAblationSlots(b *testing.B) {
	h := benchHarness(b)
	// Q17.b at a late split ships many intermediate batches while the host
	// still has per-batch join work — the configuration where slot
	// back-pressure matters.
	q := job.QueryByName("17b")
	for _, slots := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			b.ReportAllocs()
			m := h.DS.Model
			m.SharedSlots = slots
			hv := h.WithModel(m)
			p, err := hv.Opt.BuildPlan(q)
			if err != nil {
				b.Fatal(err)
			}
			split := len(p.Steps) - 1
			if split < 1 {
				split = 1
			}
			for i := 0; i < b.N; i++ {
				rep, err := hv.Exec.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: split})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					report(b, "elapsed", rep.Elapsed.Milliseconds())
					report(b, "dev-wait-slots", rep.DeviceWaitSlots().Milliseconds())
					report(b, "batches", float64(rep.Batches))
				}
			}
		})
	}
}

// BenchmarkAblationSplitTarget compares the paper's CPU+memory split target
// (eq. 12) against a CPU-only variant on decision quality for the marquee
// queries.
func BenchmarkAblationSplitTarget(b *testing.B) {
	h := benchHarness(b)
	queries := []string{"1a", "8c", "8d", "17b", "32b", "6f", "14c"}
	for _, mode := range []string{"cpu+mem", "cpu-only"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			h.Opt.Est.TargetCPUOnly = mode == "cpu-only"
			defer func() { h.Opt.Est.TargetCPUOnly = false }()
			for i := 0; i < b.N; i++ {
				good := 0
				for _, name := range queries {
					q := job.QueryByName(name)
					d, err := h.Opt.Decide(q)
					if err != nil {
						b.Fatal(err)
					}
					msr, _, err := h.SweepStrategies(q)
					if err != nil {
						b.Fatal(err)
					}
					opt, ok := harness.Best(msr)
					if !ok {
						continue
					}
					if d.StrategyLabel() == opt.Strategy.String() {
						good++
					}
				}
				if i == 0 {
					report(b, "exact-matches", float64(good))
				}
			}
		})
	}
}

// BenchmarkMultiDevice scales the hybrid execution across several simulated
// smart-storage devices (paper §4: multiple devices with their own PQEP);
// the slowest device's share shrinks with the fleet size until the host
// becomes the bottleneck.
func BenchmarkMultiDevice(b *testing.B) {
	h := benchHarness(b)
	q := job.QueryByName("17b")
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("devices=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mr, err := h.Exec.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: 1}, n)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					report(b, "elapsed", mr.Elapsed.Milliseconds())
					var slowest float64
					for _, d := range mr.DeviceElapsed {
						if d.Milliseconds() > slowest {
							slowest = d.Milliseconds()
						}
					}
					report(b, "slowest-device", slowest)
				}
			}
		})
	}
}

// BenchmarkFleetSweep scales the sharded scatter-gather executor across fleet
// sizes (internal/fleet, DESIGN.md §12): every JOB query fingerprint-verified
// against the single-device baseline, reporting the geomean speedup of the
// device-mode queries per fleet size. Slow — it re-runs the sweep per size.
func BenchmarkFleetSweep(b *testing.B) {
	h := benchHarness(b)
	counts := []int{1, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := h.FleetSweep(io.Discard, counts, "range")
		if err != nil {
			b.Fatal(err)
		}
		if !res.Clean() {
			b.Fatalf("fleet sweep not clean: %d errors, %d mismatches", res.Errors, res.Mismatches)
		}
		if i == 0 {
			for ci, n := range counts {
				report(b, fmt.Sprintf("devices=%d-speedup-x100", n), 100*res.Speedup[ci])
			}
		}
	}
}

// BenchmarkSchedulerThroughput sweeps the concurrent scheduler's worker count
// over the JOB mix and reports the virtual throughput of the adaptive policy
// against the always-host and always-NDP baselines (the serving experiment of
// DESIGN.md "Concurrent serving"). The baselines run once: always-NDP
// serializes on the command slot and always-host on the CPU lanes, so their
// virtual throughput is independent of the worker count.
func BenchmarkSchedulerThroughput(b *testing.B) {
	h := benchHarness(b)
	// ×2 so the mix contains repeat submissions: the adaptive policy offloads
	// on measured evidence, which a one-shot workload never produces.
	mix := harness.ServingMix(2)
	serve := func(b *testing.B, pol sched.Policy, conc int) float64 {
		cfg := sched.DefaultConfig()
		cfg.Policy = pol
		cfg.Workers = conc
		cfg.QueueDepth = 2 * len(mix)
		s := sched.New(h.Opt, h.Exec, h.DS.Model, cfg)
		for j, q := range mix {
			if _, err := s.Submit(context.Background(), q, sched.Priority(j%3)); err != nil {
				s.Close()
				b.Fatal(err)
			}
		}
		s.Close()
		st := s.Stats()
		if st.Errors > 0 {
			b.Fatalf("%v/%d: %d queries failed", pol, conc, st.Errors)
		}
		return st.Throughput()
	}
	for _, base := range []sched.Policy{sched.ForceHost, sched.ForceNDP} {
		b.Run("policy="+base.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tp := serve(b, base, 16)
				if i == 0 {
					b.ReportMetric(tp, "qps")
				}
			}
		})
	}
	for _, conc := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("policy=adaptive/conc=%d", conc), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tp := serve(b, sched.Adaptive, conc)
				if i == 0 {
					b.ReportMetric(tp, "qps")
				}
			}
		})
	}
}

// BenchmarkTracerOverhead measures what the observability layer adds to the
// scheduler throughput path. The "off" case is the default nil tracer/nil
// registry: every instrumentation site reduces to one pointer test, so it
// must stay within noise (≤5% wall time, zero extra allocs) of the
// pre-instrumentation BenchmarkSchedulerThroughput. The "on" case prices
// full span tracing plus metrics for comparison.
func BenchmarkTracerOverhead(b *testing.B) {
	h := benchHarness(b)
	mix := harness.ServingMix(2)
	serve := func(b *testing.B, traced bool) {
		cfg := sched.DefaultConfig()
		cfg.Policy = sched.Adaptive
		cfg.Workers = 16
		cfg.QueueDepth = 2 * len(mix)
		if traced {
			cfg.Traces = obs.NewTraceSet()
			cfg.Metrics = obs.NewRegistry()
		}
		s := sched.New(h.Opt, h.Exec, h.DS.Model, cfg)
		for j, q := range mix {
			if _, err := s.Submit(context.Background(), q, sched.Priority(j%3)); err != nil {
				s.Close()
				b.Fatal(err)
			}
		}
		s.Close()
		if st := s.Stats(); st.Errors > 0 {
			b.Fatalf("%d queries failed", st.Errors)
		}
	}
	for _, traced := range []bool{false, true} {
		name := "tracer=off"
		if traced {
			name = "tracer=on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				serve(b, traced)
			}
		})
	}
}

// BenchmarkAblationFTLCache sweeps the GreedyFTL mapping-cache budget of the
// BLK baseline and reports the derived block-path overhead (the source of
// the hardware model's BlockStackOverheadPct). Bigger caches shrink the tax.
func BenchmarkAblationFTLCache(b *testing.B) {
	for _, cacheMB := range []int64{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("mapcache=%dMB", cacheMB), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ftl.CalibrateBlockOverhead(ftl.DefaultGeometry(), cacheMB<<20, 42)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					report(b, "overhead-pct", res.OverheadPct)
					report(b, "write-amp", res.Stats.WriteAmplification())
				}
			}
		})
	}
}

// BenchmarkAblationLeanFactor sweeps the lean-pipeline discount that sets
// the device's effective per-record penalty, moving the Fig 14 crossover.
func BenchmarkAblationLeanFactor(b *testing.B) {
	h := benchHarness(b)
	for _, lean := range []float64{2, 5, 10.7, 20} {
		b.Run(fmt.Sprintf("lean=%.1f", lean), func(b *testing.B) {
			b.ReportAllocs()
			m := h.DS.Model
			// Emulate the lean sweep by scaling the device CoreMark so that
			// DataPathRatio/NDPLeanFactor matches the target penalty.
			target := m.DataPathRatio() / lean
			// penalty = sqrt(cr×mr)/NDPLeanFactor; solve cr for the target.
			want := target * hw.NDPLeanFactor // desired sqrt(cr×mr)
			cr := want * want / m.MemRatio()
			m.DeviceCoreMark = m.HostCoreMark / cr
			hv := h.WithModel(m)
			q := job.Listing2(int32(h.DS.Counts["movie_link"]/3), true)
			p, err := hv.Opt.BuildPlan(q)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ndp, err := hv.Exec.Run(p, coop.Strategy{Kind: coop.NDPOnly})
				if err != nil {
					b.Fatal(err)
				}
				host, err := hv.Exec.Run(p, coop.Strategy{Kind: coop.HostNative})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					report(b, "ndp", ndp.Elapsed.Milliseconds())
					report(b, "host", host.Elapsed.Milliseconds())
				}
			}
		})
	}
}

// BenchmarkServeOpenLoop prices the serving front door: the cost table is
// measured once, then each policy plays the identical calibrated-overload
// open-loop multi-tenant stream through sessions, the shared plan cache,
// quotas and weighted fair queuing. Virtual throughput and the aggregate
// SLO-miss rate are the headline metrics; wall ns/op prices the event loop.
func BenchmarkServeOpenLoop(b *testing.B) {
	h := benchHarness(b)
	ct, err := serve.Measure(h.DS, job.Queries(), 8)
	if err != nil {
		b.Fatal(err)
	}
	rate := 1.25 * ct.HostCapacityQPS(h.DS.Model.HostCores) / 3
	for _, pol := range []sched.Policy{sched.ForceHost, sched.ForceNDP, sched.Adaptive} {
		b.Run("policy="+pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				srv, err := serve.New(h.DS, ct, serve.Config{
					Tenants: serve.DefaultTenants(3, 10*vclock.Millisecond),
					Arrival: serve.ArrivalSpec{Kind: "poisson", Rate: rate},
					Policy:  pol,
					Horizon: vclock.Second,
					Seed:    1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := srv.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed == 0 {
					b.Fatalf("%v completed nothing", pol)
				}
				if i == 0 {
					b.ReportMetric(res.ThroughputQPS, "qps")
					b.ReportMetric(100*harness.MissRate(res), "miss%")
				}
			}
		})
	}
}
