// Package hybridndp is the public façade of the hybridNDP reproduction
// (Knödler et al., EDBT 2025): dynamic operation offloading and cooperative
// query execution in smart-storage settings.
//
// A System bundles the full stack — simulated flash, the nKV column-family
// LSM store, the relational catalog, the cost-model-driven optimizer and the
// cooperative executor with its device simulator. Typical use:
//
//	sys, _ := hybridndp.OpenJOB(0.05, hw.Cosmos())
//	q := job.QueryByName("8c")
//	report, decision, _ := sys.RunAuto(q)
//	fmt.Println(decision.StrategyLabel(), report.Elapsed)
//
// Forced strategies (host-only over the BLK or native stack, full NDP, or
// any hybrid split Hk) run through System.Run, which is how the benchmark
// harness regenerates every table and figure of the paper.
package hybridndp

import (
	"context"
	"sync"

	"hybridndp/internal/coop"
	"hybridndp/internal/core"
	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/sched"
	"hybridndp/internal/sql"
	"hybridndp/internal/table"
)

// System is one assembled hybridNDP instance.
type System struct {
	Model     hw.Model
	Flash     *flash.Flash
	DB        *kv.DB
	Catalog   *table.Catalog
	Optimizer *optimizer.Optimizer
	Executor  *coop.Executor
	// Controller records every automated run's estimate-vs-measured outcome
	// and hosts the optional calibration feedback loop.
	Controller *core.Controller

	// JOB is set when the system was opened with OpenJOB.
	JOB *job.Dataset

	servingMu sync.Mutex
	serving   *sched.Scheduler // guarded by servingMu
}

// New creates an empty system (no tables) over fresh simulated flash.
func New(m hw.Model) (*System, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	fl := flash.New(m, 0)
	db := kv.Open(fl, m, lsm.DefaultConfig())
	cat := table.NewCatalog(db)
	ctrl := core.New(cat, db, m)
	return &System{
		Model:      m,
		Flash:      fl,
		DB:         db,
		Catalog:    cat,
		Optimizer:  ctrl.Opt,
		Executor:   ctrl.Exec,
		Controller: ctrl,
	}, nil
}

// OpenJOB loads the Join-Order Benchmark dataset at the given scale (1.0 ≈
// 3.9 M rows; the paper's volume corresponds to ≈19) and assembles the
// system around it.
func OpenJOB(scale float64, m hw.Model) (*System, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ds, err := job.Load(scale, m)
	if err != nil {
		return nil, err
	}
	ctrl := core.New(ds.Cat, ds.DB, ds.Model)
	return &System{
		Model:      ds.Model, // job.Load scales the device memory reservations
		Flash:      ds.Flash,
		DB:         ds.DB,
		Catalog:    ds.Cat,
		Optimizer:  ctrl.Opt,
		Executor:   ctrl.Exec,
		Controller: ctrl,
		JOB:        ds,
	}, nil
}

// Query parses a SQL string (the JOB dialect: SELECT-PROJECT-JOIN-AGGREGATE
// with a conjunctive WHERE) and validates it against the catalog.
func (s *System) Query(sqlText string) (*query.Query, error) {
	q, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(s.Catalog); err != nil {
		return nil, err
	}
	return q, nil
}

// Decide plans the query and returns the optimizer's strategy decision,
// including the full cost picture (host/NDP totals, per-split cumulative
// costs, c_target).
func (s *System) Decide(q *query.Query) (*optimizer.Decision, error) {
	return s.Optimizer.Decide(q)
}

// DecisionStrategy converts an optimizer decision into an executable
// strategy.
func DecisionStrategy(d *optimizer.Decision) coop.Strategy {
	switch {
	case d.Hybrid:
		split := d.Split
		if split == 0 {
			split = -1
		}
		return coop.Strategy{Kind: coop.Hybrid, Split: split}
	case d.NDP:
		return coop.Strategy{Kind: coop.NDPOnly}
	default:
		return coop.Strategy{Kind: coop.HostNative}
	}
}

// Run executes the query under a forced strategy.
func (s *System) Run(q *query.Query, strat coop.Strategy) (*coop.Report, error) {
	p, err := s.Optimizer.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	return s.Executor.Run(p, strat)
}

// RunAuto lets the optimizer decide (the hybridNDP mode of the paper) and
// executes that choice through the controller, which records the
// estimate-vs-measured outcome (see System.Controller.Quality).
func (s *System) RunAuto(q *query.Query) (*coop.Report, *optimizer.Decision, error) {
	return s.Controller.Run(q)
}

// RunMulti executes a hybrid split across n simulated smart-storage devices
// (paper §4: multiple devices with their own PQEP). The driving table is
// partitioned by primary-key quantiles across the fleet.
func (s *System) RunMulti(q *query.Query, split, devices int) (*coop.MultiReport, error) {
	p, err := s.Optimizer.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	return s.Executor.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: split}, devices)
}

// Splits enumerates every hybrid split strategy for the query's plan:
// H0 (Split=-1) through H(nJoins). Join-free (single-table) queries have
// exactly one split point — H0, where the device scans and filters the base
// table and the host finalizes — so they yield the H0-only strategy set
// rather than an error; the concurrent scheduler classifies every query
// through this enumeration.
func (s *System) Splits(q *query.Query) ([]coop.Strategy, error) {
	p, err := s.Optimizer.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	out := []coop.Strategy{{Kind: coop.Hybrid, Split: -1}}
	for k := 1; k <= len(p.Steps); k++ {
		out = append(out, coop.Strategy{Kind: coop.Hybrid, Split: k})
	}
	return out, nil
}

// Serve starts (or replaces) the system's concurrent query scheduler: a
// bounded worker pool admitting many in-flight queries over the simulated
// device fleet, with admission control against the device-resource ledger and
// adaptive strategy degradation under load (see internal/sched). An existing
// scheduler is drained first. The zero Config serves with sched.DefaultConfig.
func (s *System) Serve(cfg sched.Config) *sched.Scheduler {
	if cfg == (sched.Config{}) {
		cfg = sched.DefaultConfig()
	}
	sc := sched.New(s.Optimizer, s.Executor, s.Model, cfg)
	s.servingMu.Lock()
	old := s.serving
	s.serving = sc
	s.servingMu.Unlock()
	if old != nil {
		old.Close()
	}
	return sc
}

// Submit enqueues a query on the serving scheduler (starting one with the
// default configuration if Serve was never called), blocking under
// backpressure while the admission queue is full.
func (s *System) Submit(ctx context.Context, q *query.Query, prio sched.Priority) (*sched.Ticket, error) {
	s.servingMu.Lock()
	if s.serving == nil {
		s.serving = sched.New(s.Optimizer, s.Executor, s.Model, sched.DefaultConfig())
	}
	sc := s.serving
	s.servingMu.Unlock()
	return sc.Submit(ctx, q, prio)
}

// StopServing drains the serving scheduler (all queued queries still run) and
// returns its final stats. A system that never served returns zero stats.
func (s *System) StopServing() sched.Stats {
	s.servingMu.Lock()
	sc := s.serving
	s.serving = nil
	s.servingMu.Unlock()
	if sc == nil {
		return sched.Stats{}
	}
	sc.Close()
	return sc.Stats()
}
