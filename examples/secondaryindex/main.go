// Secondaryindex builds a small custom database through the public API (no
// JOB involved) and demonstrates on-device secondary-index processing
// (paper §4.2, Fig. 9): an indexed block-nested-loop join (BNLI) on the
// device resolves join keys through the secondary LSM tree into primary-key
// seeks, against the scan-based BNL alternative.
package main

import (
	"fmt"
	"log"

	hybridndp "hybridndp"
	"hybridndp/internal/coop"
	"hybridndp/internal/exec"
	"hybridndp/internal/expr"
	"hybridndp/internal/hw"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

func main() {
	sys, err := hybridndp.New(hw.Cosmos())
	if err != nil {
		log.Fatal(err)
	}

	// Table A: orders(id, customer_id, amount) with a secondary index on
	// customer_id. Table B: customers(id, region).
	orders := table.MustSchema("orders", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "customer_id", Type: table.Int32, Size: 4},
		{Name: "amount", Type: table.Int32, Size: 4},
	}, "id", table.SecondaryIndex{Name: "idx_customer", Column: "customer_id"})
	customers := table.MustSchema("customers", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "region", Type: table.Char, Size: 8},
	}, "id")

	to, err := sys.Catalog.CreateTable(orders)
	if err != nil {
		log.Fatal(err)
	}
	tc, err := sys.Catalog.CreateTable(customers)
	if err != nil {
		log.Fatal(err)
	}

	// 20k customers in 2000 fine-grained regions (10 each), 200k orders —
	// so a region filter selects ~10 customers with ~100 orders total: the
	// selective-probe case where index lookups beat scanning (the paper's
	// insight: scans win at low selectivity, key-lookups at high).
	const nCustomers, nOrders = 20000, 200000
	for i := int32(1); i <= nCustomers; i++ {
		if err := tc.Insert([]table.Value{
			table.IntVal(i), table.StrVal(fmt.Sprintf("r%04d", i/10)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := int32(1); i <= nOrders; i++ {
		if err := to.Insert([]table.Value{
			table.IntVal(i), table.IntVal(1 + (i*7919)%nCustomers), table.IntVal(10 + i%500),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := to.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := tc.Flush(); err != nil {
		log.Fatal(err)
	}

	// SELECT COUNT(*) FROM customers c, orders o
	// WHERE c.region = 'r0042' AND o.customer_id = c.id;
	q := &query.Query{
		Name:   "orders-by-region",
		Tables: []query.TableRef{{Alias: "c", Table: "customers"}, {Alias: "o", Table: "orders"}},
		Filters: map[string]expr.Pred{
			"c": expr.Cmp{Col: "region", Op: expr.Eq, Val: table.StrVal("r0042")},
		},
		Joins:      []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		Aggregates: []query.Aggregate{{Func: query.Count, Star: true, As: "orders"}},
	}

	plan, err := sys.Optimizer.BuildPlan(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", plan)

	// Force the device join algorithm: scan-based BNL vs the in-situ
	// secondary-index BNLI (the Fig. 9 two-stage seek).
	force := func(jt exec.JoinType) *exec.Plan {
		p := *plan
		p.Steps = append([]exec.JoinStep(nil), plan.Steps...)
		st := &p.Steps[0]
		st.Type = jt
		if jt == exec.BNLI {
			// Join column on the right (orders) side is customer_id, which
			// the idx_customer secondary index covers.
			st.RightIndexIsPK = false
			st.RightIndex = "idx_customer"
		}
		return &p
	}

	for _, v := range []struct {
		label string
		plan  *exec.Plan
		strat coop.Strategy
	}{
		{"host (native stack)", plan, coop.Strategy{Kind: coop.HostNative}},
		{"device BNL  (scan-based)", force(exec.BNL), coop.Strategy{Kind: coop.NDPOnly}},
		{"device BNLI (secondary index)", force(exec.BNLI), coop.Strategy{Kind: coop.NDPOnly}},
	} {
		rep, err := sys.Executor.Run(v.plan, v.strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s %9.3f ms  -> %s = %s\n",
			v.label, rep.Elapsed.Milliseconds(), rep.Result.Columns[0], rep.Result.Rows[0][0])
	}
	fmt.Println("\nThe BNLI path seeks only matching records through the secondary LSM")
	fmt.Println("tree (secondary key → primary key → record, paper Fig. 9) instead of")
	fmt.Println("streaming the whole orders table through the device join.")
}
