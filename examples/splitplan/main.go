// Splitplan walks through the paper's plan-splitting example (§3.4, Fig. 5
// and Fig. 6) on JOB Q1.a: the cumulative device cost c_node at every split
// point H0..Hn, the target cost c_target derived from the hardware model
// (eq. 9–12), and the chosen split — then validates the choice by actually
// executing every split.
package main

import (
	"fmt"
	"log"
	"strings"

	hybridndp "hybridndp"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

func main() {
	sys, err := hybridndp.OpenJOB(0.02, hw.Cosmos())
	if err != nil {
		log.Fatal(err)
	}
	q := job.QueryByName("1a")
	d, err := sys.Decide(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(q.SQL())
	fmt.Println()
	fmt.Println("physical plan (join order chosen by the optimizer):")
	fmt.Println(d.Plan)

	sc := d.Costs
	fmt.Printf("\nsplit-point calculation (Fig. 5):\n")
	fmt.Printf("  split_cpu = %.1f%%   split_mem = %.2f%%   c_target = %.0f\n",
		sc.SplitCPU, sc.SplitMem, sc.CTarget)
	fmt.Println("  cumulative device cost per split point:")
	maxC := sc.CNode[len(sc.CNode)-1]
	for k, c := range sc.CNode {
		bar := strings.Repeat("█", int(40*c/maxC))
		marker := " "
		if k == sc.BestSplit {
			marker = "← closest to c_target"
		}
		fmt.Printf("  H%-2d %12.0f %-40s %s\n", k, c, bar, marker)
	}
	fmt.Printf("\ndecision: %s (%s)\n", d.StrategyLabel(), d.Reason)

	fmt.Println("\nvalidation — executing every split:")
	splits, err := sys.Splits(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range splits {
		rep, err := sys.Run(q, st)
		if err != nil {
			fmt.Printf("  %-4s error: %v\n", st, err)
			continue
		}
		fmt.Printf("  %-4s %9.3f ms  (shipped %d B in %d batches)\n",
			st, rep.Elapsed.Milliseconds(), rep.TransferredBytes, rep.Batches)
	}
}
