// Quickstart: load a small Join-Order-Benchmark dataset, let the hybridNDP
// optimizer decide how to execute a query, and compare the automated choice
// against the traditional host-only execution.
package main

import (
	"fmt"
	"log"

	hybridndp "hybridndp"
	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

func main() {
	// Open a system over the simulated COSMOS+ smart-storage device and
	// load JOB at 2% scale (~80k rows) — enough to see the trade-offs.
	sys, err := hybridndp.OpenJOB(0.02, hw.Cosmos())
	if err != nil {
		log.Fatal(err)
	}

	q := job.QueryByName("1a")
	fmt.Println(q.SQL())
	fmt.Println()

	// hybridNDP mode: the cost model computes the split points, the target
	// cost, and picks host-only / full NDP / hybrid-Hk automatically.
	rep, d, err := sys.RunAuto(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer chose %s: %s\n", d.StrategyLabel(), d.Reason)
	fmt.Printf("hybridNDP execution: %8.3f ms (%d result rows, %d intermediate batches)\n",
		rep.Elapsed.Milliseconds(), rep.Result.RowCount, rep.Batches)

	// Baseline: the same plan on the traditional host-only stack.
	host, err := sys.Run(q, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host-only execution:  %8.3f ms\n", host.Elapsed.Milliseconds())
	fmt.Printf("speedup: %.2fx\n", float64(host.Elapsed)/float64(rep.Elapsed))

	// Both produce identical results.
	fmt.Println("\nresult:")
	fmt.Println(" ", rep.Result.Columns)
	for _, row := range rep.Result.Rows {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = v.String()
		}
		fmt.Println(" ", vals)
	}
}
