// Tracing demonstrates the observability subsystem (internal/obs) on the
// paper's flagship query: it runs JOB Q8.d as a cooperative hybrid, records
// every pipeline stage as a span on the host and device virtual timelines,
// and writes trace.json — load it in a Chrome trace viewer (chrome://tracing
// or https://ui.perfetto.dev) to see the two engines overlapping and the
// device stalling on exhausted shared-buffer slots.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

func main() {
	// A single shared result-buffer slot makes the back-pressure of paper
	// §4.3 visible: the device must wait for the host to drain a batch
	// before producing the next one, which shows up as an explicit
	// device.wait.slot span on the device track.
	model := hw.Cosmos()
	model.SharedSlots = 1

	h, err := harness.NewSeeded(0.05, model, job.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}

	// H1: one join on the device, the rest on the host.
	tr, err := h.TraceQuery("8d", "H1")
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteTrace(f, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote trace.json (%d spans) — open it in a Chrome trace viewer\n",
		tr.Trace.Len())
}
