// Cooperative demonstrates the overlapping host/device execution of paper §4
// and Fig. 17 on JOB Q8.d: the device produces intermediate result sets into
// shared buffer slots while the host consumes them, and the two engines only
// stall on each other at the boundaries.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	hybridndp "hybridndp"
	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

func main() {
	sys, err := hybridndp.OpenJOB(0.05, hw.Cosmos())
	if err != nil {
		log.Fatal(err)
	}
	q := job.QueryByName("8d")
	// The paper analyses Q8.d at split H2 — two joins on the device.
	rep, err := sys.Run(q, coop.Strategy{Kind: coop.Hybrid, Split: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Q8.d at H2: %8.3f ms end-to-end, %d batches\n\n", rep.Elapsed.Milliseconds(), rep.Batches)

	fmt.Println("batch timeline (paper Fig. 17):")
	fmt.Println("  idx   device-ready   host-fetched   host-done     rows")
	for _, ev := range rep.Timeline {
		fmt.Printf("  %3d %12.3fms %12.3fms %12.3fms %8d\n",
			ev.Idx, float64(ev.DeviceReady)/1e6, float64(ev.HostFetched)/1e6,
			float64(ev.HostDone)/1e6, ev.Rows)
	}

	fmt.Println("\nhost stage distribution (paper Table 4, left):")
	var hostTotal float64
	for _, d := range rep.HostAccount {
		hostTotal += float64(d)
	}
	stages := []struct{ label, cat string }{
		{"NDP setup (command)", hw.CatNDPSetup},
		{"Wait (initial device exec.)", hw.CatWaitInitial},
		{"Wait (2nd..nth device exec.)", hw.CatWaitFetch},
		{"Result transfer", hw.CatTransfer},
	}
	rest := hostTotal
	for _, s := range stages {
		d := float64(rep.HostAccount[s.cat])
		rest -= d
		fmt.Printf("  %-30s %8.3fms  %5.2f%%\n", s.label, d/1e6, 100*d/hostTotal)
	}
	fmt.Printf("  %-30s %8.3fms  %5.2f%%\n", "Processing", rest/1e6, 100*rest/hostTotal)

	fmt.Println("\ndevice operation distribution (paper Table 4, right):")
	var devTotal float64
	for _, d := range rep.DeviceAccount {
		devTotal += float64(d)
	}
	type kv struct {
		k string
		v float64
	}
	var entries []kv
	for k, v := range rep.DeviceAccount {
		entries = append(entries, kv{k, float64(v)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].v > entries[j].v })
	for _, e := range entries {
		if e.v/devTotal < 0.001 {
			continue
		}
		bar := strings.Repeat("▒", int(30*e.v/devTotal))
		fmt.Printf("  %-30s %5.2f%% %s\n", e.k, 100*e.v/devTotal, bar)
	}
}
