// Adhocsql runs a free-form SQL query (the JOB dialect) through the full
// hybridNDP pipeline: parse → validate → plan → cost-model decision →
// cooperative execution, comparing the automated choice against every
// alternative.
package main

import (
	"flag"
	"fmt"
	"log"

	hybridndp "hybridndp"
	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
)

const defaultQuery = `
SELECT MIN(t.title), MIN(mi.info)
FROM title AS t, movie_info AS mi, movie_keyword AS mk,
     keyword AS k, info_type AS it
WHERE k.keyword = 'superhero'
  AND it.info = 'genres'
  AND mi.info IN ('Action', 'Sci-Fi')
  AND t.production_year > 2000
  AND k.id = mk.keyword_id
  AND t.id = mk.movie_id
  AND t.id = mi.movie_id
  AND it.id = mi.info_type_id
  AND mk.movie_id = mi.movie_id;`

func main() {
	sqlText := flag.String("sql", defaultQuery, "SQL text to run")
	scale := flag.Float64("scale", 0.02, "JOB dataset scale")
	flag.Parse()

	sys, err := hybridndp.OpenJOB(*scale, hw.Cosmos())
	if err != nil {
		log.Fatal(err)
	}
	q, err := sys.Query(*sqlText)
	if err != nil {
		log.Fatal(err)
	}
	d, err := sys.Decide(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.SQL())
	fmt.Println()
	fmt.Println(d.Plan)
	fmt.Printf("\ndecision: %s — %s\n\n", d.StrategyLabel(), d.Reason)

	strategies := []coop.Strategy{{Kind: coop.BlockOnly}, {Kind: coop.HostNative}}
	for k := -1; k <= len(d.Plan.Steps); k++ {
		if k == 0 {
			continue
		}
		strategies = append(strategies, coop.Strategy{Kind: coop.Hybrid, Split: k})
	}
	strategies = append(strategies, coop.Strategy{Kind: coop.NDPOnly})

	chosen := hybridndp.DecisionStrategy(d)
	for _, st := range strategies {
		rep, err := sys.Executor.Run(d.Plan, st)
		if err != nil {
			fmt.Printf("  %-7s error: %v\n", st, err)
			continue
		}
		marker := ""
		if st == chosen {
			marker = "  ← optimizer's choice"
		}
		fmt.Printf("  %-7s %9.3f ms%s\n", st, rep.Elapsed.Milliseconds(), marker)
	}
}
